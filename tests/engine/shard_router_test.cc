#include "engine/shard_router.h"

#include <gtest/gtest.h>

#include <vector>

#include "plan/compiler.h"
#include "workload/stock.h"

namespace cepr {
namespace {

CompiledQueryPtr CompileOnStock(const std::string& text) {
  auto plan = CompileQueryText(text, StockGenerator::MakeSchema());
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return plan.value();
}

Event StockEvent(const SchemaPtr& schema, const std::string& symbol) {
  return Event(schema, /*ts=*/0,
               {Value::String(symbol), Value::Float(10.0), Value::Int(1)});
}

TEST(ShardRouterTest, PartitionKeyIsStableAndInRange) {
  const auto plan = CompileOnStock(
      "SELECT a.price FROM Stock MATCH PATTERN SEQ(a) "
      "PARTITION BY symbol WHERE a.price > 0");
  ASSERT_GE(plan->partition_attr_index, 0);
  const auto schema = StockGenerator::MakeSchema();

  ShardRouter router(*plan, /*num_shards=*/4, /*query_index=*/0);
  EXPECT_TRUE(router.partitioned());
  for (int i = 0; i < 50; ++i) {
    const Event e = StockEvent(schema, "S" + std::to_string(i));
    const size_t shard = router.ShardOf(e);
    EXPECT_LT(shard, 4u);
    // Same key must always land on the same shard (runs never migrate).
    EXPECT_EQ(router.ShardOf(StockEvent(schema, "S" + std::to_string(i))),
              shard);
  }
}

TEST(ShardRouterTest, SpreadsKeysAcrossShards) {
  const auto plan = CompileOnStock(
      "SELECT a.price FROM Stock MATCH PATTERN SEQ(a) "
      "PARTITION BY symbol WHERE a.price > 0");
  const auto schema = StockGenerator::MakeSchema();
  ShardRouter router(*plan, /*num_shards=*/4, /*query_index=*/0);

  std::vector<int> hits(4, 0);
  for (int i = 0; i < 256; ++i) {
    hits[router.ShardOf(StockEvent(schema, "SYM" + std::to_string(i)))]++;
  }
  // With 256 keys over 4 shards and an avalanche mix, every shard must see
  // a healthy share (an unmixed modulo of clustered hashes would not).
  for (int shard = 0; shard < 4; ++shard) {
    EXPECT_GT(hits[shard], 256 / 16) << "shard " << shard << " starved";
  }
}

TEST(ShardRouterTest, UnpartitionedQueryPinsToOneShard) {
  const auto plan = CompileOnStock(
      "SELECT a.price FROM Stock MATCH PATTERN SEQ(a) WHERE a.price > 0");
  ASSERT_LT(plan->partition_attr_index, 0);
  const auto schema = StockGenerator::MakeSchema();

  ShardRouter router0(*plan, /*num_shards=*/4, /*query_index=*/0);
  ShardRouter router1(*plan, /*num_shards=*/4, /*query_index=*/1);
  EXPECT_FALSE(router0.partitioned());
  // Every event of an unpartitioned query goes to its pinned shard...
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(router0.ShardOf(StockEvent(schema, "S" + std::to_string(i))), 0u);
    EXPECT_EQ(router1.ShardOf(StockEvent(schema, "S" + std::to_string(i))), 1u);
  }
}

TEST(ShardRouterTest, SingleShardDegeneratesToZero) {
  const auto plan = CompileOnStock(
      "SELECT a.price FROM Stock MATCH PATTERN SEQ(a) "
      "PARTITION BY symbol WHERE a.price > 0");
  const auto schema = StockGenerator::MakeSchema();
  ShardRouter router(*plan, /*num_shards=*/1, /*query_index=*/3);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(router.ShardOf(StockEvent(schema, "K" + std::to_string(i))), 0u);
  }
}

}  // namespace
}  // namespace cepr
