#include "engine/predicate_index.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "testing/helpers.h"

namespace cepr {
namespace {

using testing::StockSchema;
using testing::Tick;

CompiledQueryPtr MustCompile(const std::string& text) {
  auto q = CompileQueryText(text, StockSchema());
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

// A two-step pattern whose anchor carries `where` as its only entry
// conjunct (the b-side conjunct is correlated, so it never gates entry).
CompiledQueryPtr AnchoredQuery(const std::string& where) {
  return MustCompile(
      "SELECT a.symbol, a.price FROM Stock MATCH PATTERN SEQ(a, b) "
      "WHERE " + where + " AND b.price > a.price "
      "WITHIN 10 MILLISECONDS "
      "RANK BY b.price DESC LIMIT 5 EMIT ON WINDOW CLOSE");
}

std::vector<uint32_t> ProbeIds(const PredicateIndex& index, const Event& e) {
  std::vector<uint32_t> out;
  index.Probe(e, &out);
  return out;
}

TEST(PredicateIndexTest, EqualityOnString) {
  PredicateIndex index;
  const auto q = AnchoredQuery("a.symbol = 'S1'");
  index.AddQuery(7, q.get());
  EXPECT_EQ(index.num_queries(), 1u);
  EXPECT_EQ(index.num_always_candidates(), 0u);
  EXPECT_EQ(ProbeIds(index, Tick(0, 50, 100, "S1")),
            (std::vector<uint32_t>{7}));
  EXPECT_TRUE(ProbeIds(index, Tick(0, 50, 100, "S2")).empty());
}

TEST(PredicateIndexTest, EqualityOnIntEitherOrientation) {
  PredicateIndex index;
  const auto q1 = AnchoredQuery("a.volume = 42");
  const auto q2 = AnchoredQuery("17 = a.volume");
  index.AddQuery(1, q1.get());
  index.AddQuery(2, q2.get());
  EXPECT_EQ(ProbeIds(index, Tick(0, 50, 42)), (std::vector<uint32_t>{1}));
  EXPECT_EQ(ProbeIds(index, Tick(0, 50, 17)), (std::vector<uint32_t>{2}));
  EXPECT_TRUE(ProbeIds(index, Tick(0, 50, 99)).empty());
}

TEST(PredicateIndexTest, RangeBounds) {
  PredicateIndex index;
  const auto gt = AnchoredQuery("a.price > 100");
  const auto ge = AnchoredQuery("a.price >= 100");
  const auto lt = AnchoredQuery("a.price < 100");
  const auto le = AnchoredQuery("a.price <= 100");
  index.AddQuery(0, gt.get());
  index.AddQuery(1, ge.get());
  index.AddQuery(2, lt.get());
  index.AddQuery(3, le.get());
  EXPECT_EQ(index.num_always_candidates(), 0u);
  // Strictly above: the two lower bounds pass.
  EXPECT_EQ(ProbeIds(index, Tick(0, 150)), (std::vector<uint32_t>{0, 1}));
  // Exactly at the threshold: only the inclusive bounds pass.
  EXPECT_EQ(ProbeIds(index, Tick(0, 100)), (std::vector<uint32_t>{1, 3}));
  // Strictly below: the two upper bounds pass.
  EXPECT_EQ(ProbeIds(index, Tick(0, 50)), (std::vector<uint32_t>{2, 3}));
}

TEST(PredicateIndexTest, FlippedRangeOrientation) {
  PredicateIndex index;
  // `100 < a.price` is `a.price > 100`.
  const auto q = AnchoredQuery("100 < a.price");
  index.AddQuery(4, q.get());
  EXPECT_EQ(ProbeIds(index, Tick(0, 150)), (std::vector<uint32_t>{4}));
  EXPECT_TRUE(ProbeIds(index, Tick(0, 100)).empty());
  EXPECT_TRUE(ProbeIds(index, Tick(0, 50)).empty());
}

TEST(PredicateIndexTest, ResidualConjunctsEvaluateExactly) {
  PredicateIndex index;
  // Neither a pure equality nor a one-sided literal range: falls back to
  // per-probe evaluation, which must agree with the evaluator.
  const auto q = AnchoredQuery("a.price * 2 > a.volume");
  index.AddQuery(3, q.get());
  EXPECT_EQ(index.num_always_candidates(), 0u);
  EXPECT_EQ(ProbeIds(index, Tick(0, 60, 100)), (std::vector<uint32_t>{3}));
  EXPECT_TRUE(ProbeIds(index, Tick(0, 40, 100)).empty());
}

TEST(PredicateIndexTest, AllEntryConjunctsMustHold) {
  PredicateIndex index;
  // Two event-only conjuncts on the same anchor: the index may dispatch on
  // the strongest one, but a candidate verdict must still respect both at
  // matcher time — here we only require conservative behavior: every event
  // passing BOTH is a candidate.
  const auto q = AnchoredQuery("a.price > 100 AND a.volume = 5");
  index.AddQuery(0, q.get());
  EXPECT_EQ(ProbeIds(index, Tick(0, 150, 5)), (std::vector<uint32_t>{0}));
  // An event failing the indexed conjunct is ruled out.
  const auto hit_low = ProbeIds(index, Tick(0, 150, 6));
  const auto hit_high = ProbeIds(index, Tick(0, 50, 5));
  // At least one of the two failing events must be ruled out by the
  // strongest guard; neither may be a false negative for a passing event.
  EXPECT_TRUE(hit_low.empty() || hit_high.empty());
}

TEST(PredicateIndexTest, NoEntryConjunctMeansAlwaysCandidate) {
  PredicateIndex index;
  const auto q = MustCompile(
      "SELECT a.symbol FROM Stock MATCH PATTERN SEQ(a, b) "
      "WHERE b.price > a.price WITHIN 10 MILLISECONDS "
      "RANK BY b.price DESC LIMIT 5 EMIT ON WINDOW CLOSE");
  index.AddQuery(9, q.get());
  EXPECT_EQ(index.num_always_candidates(), 1u);
  EXPECT_EQ(ProbeIds(index, Tick(0, 1)), (std::vector<uint32_t>{9}));
}

TEST(PredicateIndexTest, CorrelatedAnchorConjunctIsNotEventOnly) {
  PredicateIndex index;
  // The dip query's anchor has no event-only conjunct (everything
  // references later variables), so it must stay an always-candidate.
  const auto q = MustCompile(
      "SELECT a.symbol FROM Stock MATCH PATTERN SEQ(a, b+, c) "
      "PARTITION BY symbol "
      "WHERE b[i].price < b[i-1].price AND b[1].price < a.price "
      "  AND c.price > a.price "
      "WITHIN 100 MILLISECONDS "
      "RANK BY (a.price - MIN(b.price)) / a.price DESC "
      "LIMIT 5 EMIT ON WINDOW CLOSE");
  index.AddQuery(0, q.get());
  EXPECT_EQ(index.num_always_candidates(), 1u);
  EXPECT_EQ(ProbeIds(index, Tick(0, 500)), (std::vector<uint32_t>{0}));
}

TEST(PredicateIndexTest, ProbeOutputIsAscendingAndDeduplicated) {
  PredicateIndex index;
  const auto q5 = AnchoredQuery("a.price > 10");
  const auto q1 = AnchoredQuery("a.price > 20");
  const auto q3 = AnchoredQuery("a.volume = 100");
  index.AddQuery(5, q5.get());
  index.AddQuery(1, q1.get());
  index.AddQuery(3, q3.get());
  EXPECT_EQ(ProbeIds(index, Tick(0, 50, 100)),
            (std::vector<uint32_t>{1, 3, 5}));
}

TEST(PredicateIndexTest, RemoveQueryRebuilds) {
  PredicateIndex index;
  const auto q1 = AnchoredQuery("a.price > 10");
  const auto q2 = AnchoredQuery("a.price > 10");
  index.AddQuery(1, q1.get());
  index.AddQuery(2, q2.get());
  EXPECT_EQ(ProbeIds(index, Tick(0, 50)), (std::vector<uint32_t>{1, 2}));
  index.RemoveQuery(1);
  EXPECT_EQ(index.num_queries(), 1u);
  EXPECT_EQ(ProbeIds(index, Tick(0, 50)), (std::vector<uint32_t>{2}));
  index.RemoveQuery(2);
  EXPECT_EQ(index.num_queries(), 0u);
  EXPECT_TRUE(ProbeIds(index, Tick(0, 50)).empty());
}

TEST(PredicateIndexTest, ClearPreservesCounters) {
  PredicateIndex index;
  const auto q = AnchoredQuery("a.price > 10");
  index.AddQuery(0, q.get());
  ProbeIds(index, Tick(0, 50));
  ProbeIds(index, Tick(0, 5));
  EXPECT_EQ(index.probes(), 2u);
  EXPECT_EQ(index.candidates(), 1u);
  index.Clear();
  EXPECT_EQ(index.num_queries(), 0u);
  EXPECT_EQ(index.probes(), 2u);
  EXPECT_EQ(index.candidates(), 1u);
}

TEST(PredicateIndexTest, ProbeBatchMatchesPerEventProbe) {
  PredicateIndex index;
  const auto gt = AnchoredQuery("a.price > 100");
  const auto ge = AnchoredQuery("a.price >= 100");
  const auto lt = AnchoredQuery("a.price < 100");
  const auto le = AnchoredQuery("a.price <= 100");
  const auto eq = AnchoredQuery("a.symbol = 'S1'");
  const auto vol = AnchoredQuery("a.volume = 42");
  const auto res = AnchoredQuery("a.price * 2 > a.volume");
  const auto always = MustCompile(
      "SELECT a.symbol FROM Stock MATCH PATTERN SEQ(a, b) "
      "WHERE b.price > a.price WITHIN 10 MILLISECONDS "
      "RANK BY b.price DESC LIMIT 5 EMIT ON WINDOW CLOSE");
  index.AddQuery(0, gt.get());
  index.AddQuery(1, ge.get());
  index.AddQuery(2, lt.get());
  index.AddQuery(3, le.get());
  index.AddQuery(5, eq.get());
  index.AddQuery(8, vol.get());
  index.AddQuery(11, res.get());
  index.AddQuery(12, always.get());

  // Mixed rows: both sides of every threshold, the exact threshold, eq
  // hits/misses, residual pass/fail — per-row batch output must equal the
  // scalar probe bit for bit (same ids, same ascending order).
  const std::vector<Event> events = {
      Tick(0, 150, 42, "S1"), Tick(1, 100, 42, "S2"), Tick(2, 50, 100, "S1"),
      Tick(3, 99.5, 7, "S3"), Tick(4, 100.5, 300, "S1"), Tick(5, 3, 5, "S2"),
      Tick(6, 1000, 10000, "S1")};
  EventBatch batch(events.data(), events.size(),
                   StockSchema()->num_attributes());
  std::vector<std::vector<uint32_t>> got;
  index.ProbeBatch(batch, &got);
  ASSERT_EQ(got.size(), events.size());
  for (size_t row = 0; row < events.size(); ++row) {
    EXPECT_EQ(got[row], ProbeIds(index, events[row])) << "row " << row;
  }
}

TEST(PredicateIndexTest, ProbeBatchCounters) {
  PredicateIndex index;
  const auto q1 = AnchoredQuery("a.price > 10");
  const auto q2 = AnchoredQuery("a.volume = 100");
  index.AddQuery(1, q1.get());
  index.AddQuery(2, q2.get());
  const std::vector<Event> events = {Tick(0, 50, 100),  // both candidates
                                     Tick(1, 5, 1),     // neither
                                     Tick(2, 50, 1)};   // q1 only
  EventBatch batch(events.data(), events.size(),
                   StockSchema()->num_attributes());
  std::vector<std::vector<uint32_t>> got;
  index.ProbeBatch(batch, &got);
  EXPECT_EQ(index.probes(), 3u);
  EXPECT_EQ(index.candidates(), 3u);
  EXPECT_EQ(index.batch_scan_events(), 3u);
  EXPECT_EQ(index.bitmap_hits(), 3u);
  // Scalar probes advance the shared counters but not the batch ones.
  ProbeIds(index, Tick(3, 50, 100));
  EXPECT_EQ(index.probes(), 4u);
  EXPECT_EQ(index.batch_scan_events(), 3u);
}

TEST(PredicateIndexTest, CountersTrackProbes) {
  PredicateIndex index;
  const auto q1 = AnchoredQuery("a.price > 10");
  const auto q2 = AnchoredQuery("a.volume = 100");
  index.AddQuery(1, q1.get());
  index.AddQuery(2, q2.get());
  ProbeIds(index, Tick(0, 50, 100));  // both candidates
  ProbeIds(index, Tick(0, 5, 1));     // neither
  EXPECT_EQ(index.probes(), 2u);
  EXPECT_EQ(index.candidates(), 2u);
}

}  // namespace
}  // namespace cepr
