// Tests for the extended pattern constructs: optional components (v?),
// Kleene-star (v*), bounded Kleene (v{m,n}) and count-based WITHIN.

#include <gtest/gtest.h>

#include "engine/matcher.h"
#include "testing/helpers.h"

namespace cepr {
namespace {

using testing::StockSchema;
using testing::Tick;

class Rig {
 public:
  explicit Rig(const std::string& query_text,
               MatcherOptions options = MatcherOptions{})
      : plan_(CompileQueryText(query_text, StockSchema()).value()),
        matcher_(plan_, options, nullptr, &stats_, &next_match_id_) {}

  std::vector<Match> PushPrices(const std::vector<double>& prices) {
    std::vector<Match> all;
    uint64_t seq = 0;
    for (double p : prices) {
      Event e = Tick(static_cast<Timestamp>(seq) * 1000, p);
      e.set_sequence(seq++);
      std::vector<Match> out;
      matcher_.OnEvent(std::make_shared<const Event>(std::move(e)), &out);
      for (auto& m : out) all.push_back(std::move(m));
    }
    return all;
  }

  MatcherStats stats() const { return stats_.Snapshot(); }

 private:
  CompiledQueryPtr plan_;
  AtomicMatcherStats stats_;
  uint64_t next_match_id_ = 0;
  Matcher matcher_;
};

// -- Optional components ----------------------------------------------------

TEST(OptionalTest, BindsWhenPresent) {
  Rig rig(
      "SELECT a.price, o.price, c.price FROM Stock MATCH PATTERN SEQ(a, o?, c) "
      "WHERE a.price < 10 AND o.price > 500 AND c.price > 20 AND c.price < 400");
  // 5, 600 (optional spike), 25.
  const auto matches = rig.PushPrices({5, 600, 25});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].row[1], Value::Float(600));
  EXPECT_EQ(matches[0].row[2], Value::Float(25));
}

TEST(OptionalTest, SkippedWhenAbsent) {
  Rig rig(
      "SELECT a.price, o.price, c.price FROM Stock MATCH PATTERN SEQ(a, o?, c) "
      "WHERE a.price < 10 AND o.price > 500 AND c.price > 20 AND c.price < 400");
  const auto matches = rig.PushPrices({5, 25});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_TRUE(matches[0].row[1].is_null());  // o absent -> NULL
  EXPECT_EQ(matches[0].row[2], Value::Float(25));
  // The optional variable's binding is empty.
  EXPECT_TRUE(matches[0].bindings[1].empty());
}

TEST(OptionalTest, GreedyPreferenceUnderSkipTillNext) {
  // An event satisfying both o and c binds o (earliest component wins);
  // the match then needs a later c.
  Rig rig(
      "SELECT o.price, c.price FROM Stock MATCH PATTERN SEQ(a, o?, c) "
      "WHERE a.price < 10 AND o.price > 20 AND c.price > 20");
  const auto matches = rig.PushPrices({5, 30, 40});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].row[0], Value::Float(30));  // o took the first 30
  EXPECT_EQ(matches[0].row[1], Value::Float(40));
}

TEST(OptionalTest, SkipTillAnyExploresBothReadings) {
  Rig rig(
      "SELECT o.price, c.price FROM Stock MATCH PATTERN SEQ(a, o?, c) "
      "USING SKIP_TILL_ANY_MATCH "
      "WHERE a.price < 10 AND o.price > 20 AND c.price > 20");
  const auto matches = rig.PushPrices({5, 30, 40});
  // {o=30,c=40}, {o absent,c=30}, {o absent,c=40}: 3 readings.
  ASSERT_EQ(matches.size(), 3u);
}

TEST(OptionalTest, LeadingOptionalCanStartTheRunOrBeSkipped) {
  Rig rig(
      "SELECT o.price, c.price FROM Stock MATCH PATTERN SEQ(o?, c) "
      "WHERE o.price < 10 AND c.price > 20");
  // Two starts: 5 begins a run at o; 25 begins its own run directly at c
  // (skipping the leading optional). Both complete on 25.
  const auto with_o = rig.PushPrices({5, 25});
  ASSERT_EQ(with_o.size(), 2u);
  EXPECT_EQ(with_o[0].row[0], Value::Float(5));
  EXPECT_TRUE(with_o[1].row[0].is_null());

  Rig rig2(
      "SELECT o.price, c.price FROM Stock MATCH PATTERN SEQ(o?, c) "
      "WHERE o.price < 10 AND c.price > 20");
  // No o candidate: 25 starts and completes the match alone.
  const auto without_o = rig2.PushPrices({15, 25});
  ASSERT_EQ(without_o.size(), 1u);
  EXPECT_TRUE(without_o[0].row[0].is_null());
}

TEST(OptionalTest, ChainedOptionalsAllSkippable) {
  Rig rig(
      "SELECT o1.price, o2.price, c.price FROM Stock "
      "MATCH PATTERN SEQ(a, o1?, o2?, c) "
      "WHERE a.price < 10 AND o1.price > 100 AND o2.price > 200 "
      "  AND c.price > 20 AND c.price < 100");
  const auto matches = rig.PushPrices({5, 25});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_TRUE(matches[0].row[0].is_null());
  EXPECT_TRUE(matches[0].row[1].is_null());
  EXPECT_EQ(matches[0].row[2], Value::Float(25));
}

// -- Kleene star and bounds ---------------------------------------------------

TEST(KleeneStarTest, ZeroIterationsAllowed) {
  Rig rig(
      "SELECT COUNT(b), c.price FROM Stock MATCH PATTERN SEQ(a, b*, c) "
      "WHERE a.price < 10 AND b[i].price > 100 AND c.price > 20 "
      "  AND c.price < 100");
  // No b candidates: a=5, c=25 matches with COUNT(b)=0.
  const auto matches = rig.PushPrices({5, 25});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].row[0], Value::Int(0));
}

TEST(KleeneStarTest, IterationsStillAccumulate) {
  Rig rig(
      "SELECT COUNT(b), c.price FROM Stock MATCH PATTERN SEQ(a, b*, c) "
      "WHERE a.price < 10 AND b[i].price > 100 AND c.price > 20 "
      "  AND c.price < 100");
  const auto matches = rig.PushPrices({5, 150, 160, 25});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].row[0], Value::Int(2));
}

TEST(KleeneBoundsTest, MinimumGatesClosing) {
  Rig rig(
      "SELECT COUNT(b) FROM Stock MATCH PATTERN SEQ(a, b{3,}, c) "
      "WHERE a.price > 99 AND b[i].price < a.price AND c.price > a.price");
  // Only 2 b-iterations before the c candidate: transition blocked; after a
  // third, the next c closes.
  const auto matches = rig.PushPrices({100, 50, 40, 110, 30, 120});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_GE(matches[0].row[0].AsInt(), 3);
}

TEST(KleeneBoundsTest, MaximumStopsExtension) {
  Rig rig(
      "SELECT COUNT(b), c.price FROM Stock MATCH PATTERN SEQ(a, b{1,2}, c) "
      "WHERE a.price > 99 AND b[i].price < a.price AND c.price > a.price");
  // Three candidates below a, but max 2 iterations; the third (30) is
  // neither an extension nor a c -> ignored under skip-till-next.
  const auto matches = rig.PushPrices({100, 50, 40, 30, 110});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].row[0], Value::Int(2));
  EXPECT_EQ(matches[0].row[1], Value::Float(110));
}

TEST(KleeneBoundsTest, ExactCount) {
  Rig rig(
      "SELECT COUNT(b) FROM Stock MATCH PATTERN SEQ(a, b{2}, c) "
      "WHERE a.price > 99 AND b[i].price < a.price AND c.price > a.price");
  const auto matches = rig.PushPrices({100, 50, 40, 110});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].row[0], Value::Int(2));

  Rig rig_short(
      "SELECT COUNT(b) FROM Stock MATCH PATTERN SEQ(a, b{2}, c) "
      "WHERE a.price > 99 AND b[i].price < a.price AND c.price > a.price");
  EXPECT_TRUE(rig_short.PushPrices({100, 50, 110}).empty());
}

TEST(KleeneBoundsTest, SkipTillAnyRespectsBounds) {
  Rig rig(
      "SELECT COUNT(b) FROM Stock MATCH PATTERN SEQ(a, b{2,3}, c) "
      "USING SKIP_TILL_ANY_MATCH "
      "WHERE a.price > 99 AND b[i].price < a.price AND b[i].price > 10 "
      "  AND c.price > a.price");
  // Candidates {50, 40, 30}: subsets of size 2..3 = C(3,2)+C(3,3) = 4.
  const auto matches = rig.PushPrices({100, 50, 40, 30, 110});
  ASSERT_EQ(matches.size(), 4u);
  for (const Match& m : matches) {
    EXPECT_GE(m.row[0].AsInt(), 2);
    EXPECT_LE(m.row[0].AsInt(), 3);
  }
}

// -- Count-based WITHIN --------------------------------------------------------

TEST(WithinEventsTest, ExpiresRunsBySequenceDistance) {
  Rig rig(
      "SELECT a.price, c.price FROM Stock MATCH PATTERN SEQ(a, c) "
      "WHERE a.price < 10 AND c.price > 20 "
      "WITHIN 3 EVENTS");
  // a at seq 0; c at seq 4 is > 3 events away -> expired.
  EXPECT_TRUE(rig.PushPrices({5, 11, 12, 13, 25}).empty());
  EXPECT_EQ(rig.stats().runs_expired, 1u);

  Rig rig2(
      "SELECT a.price, c.price FROM Stock MATCH PATTERN SEQ(a, c) "
      "WHERE a.price < 10 AND c.price > 20 "
      "WITHIN 3 EVENTS");
  // c at seq 3 is exactly 3 events away -> inclusive, matches.
  EXPECT_EQ(rig2.PushPrices({5, 11, 12, 25}).size(), 1u);
}

// -- Parser / analyzer acceptance for the new syntax --------------------------

TEST(ExtendedSyntaxTest, ParseAndUnparseRoundTrip) {
  for (const std::string text : {
           "SELECT c.price FROM Stock MATCH PATTERN SEQ(a?, c)",
           "SELECT c.price FROM Stock MATCH PATTERN SEQ(b*, c)",
           "SELECT c.price FROM Stock MATCH PATTERN SEQ(b{2,5}, c)",
           "SELECT c.price FROM Stock MATCH PATTERN SEQ(b{3}, c)",
           "SELECT c.price FROM Stock MATCH PATTERN SEQ(b{2,}, c)",
           "SELECT c.price FROM Stock MATCH PATTERN SEQ(a, c) WITHIN 5 EVENTS",
       }) {
    auto plan = CompileQueryText(text, StockSchema());
    ASSERT_TRUE(plan.ok()) << text << ": " << plan.status().ToString();
    // Unparse -> reparse -> same canonical text.
    const std::string canonical = (*plan)->analyzed.ast.ToString();
    auto again = CompileQueryText(canonical, StockSchema());
    ASSERT_TRUE(again.ok()) << canonical << ": " << again.status().ToString();
    EXPECT_EQ((*again)->analyzed.ast.ToString(), canonical);
  }
}

TEST(ExtendedSyntaxTest, AnalyzerRejections) {
  for (const std::string text : {
           // Trailing skippable components.
           "SELECT a.price FROM Stock MATCH PATTERN SEQ(a, o?)",
           "SELECT a.price FROM Stock MATCH PATTERN SEQ(a, b*)",
           "SELECT a.price FROM Stock MATCH PATTERN SEQ(a, b{0,3})",
           // All-skippable patterns.
           "SELECT o.price FROM Stock MATCH PATTERN SEQ(o?)",
           // Bad bounds.
           "SELECT c.price FROM Stock MATCH PATTERN SEQ(b{5,2}, c)",
           "SELECT c.price FROM Stock MATCH PATTERN SEQ(b{0,0}, c)",
           // Negated optional.
           "SELECT c.price FROM Stock MATCH PATTERN SEQ(a, !n?, c)",
       }) {
    auto plan = CompileQueryText(text, StockSchema());
    EXPECT_FALSE(plan.ok()) << text;
  }
}

TEST(ExtendedSyntaxTest, OptionalVarUsableInSelect) {
  auto plan = CompileQueryText(
      "SELECT o.price FROM Stock MATCH PATTERN SEQ(a, o?, c)", StockSchema());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
}

TEST(ExtendedSyntaxTest, BoundedKleeneIsKleeneForTypechecking) {
  // Iteration refs and aggregates work on {m,n} variables.
  EXPECT_TRUE(CompileQueryText(
                  "SELECT MIN(b.price) FROM Stock MATCH PATTERN SEQ(a, b{2,4}, c) "
                  "WHERE b[i].price < b[i-1].price",
                  StockSchema())
                  .ok());
  // Plain VarRef on them is still rejected.
  EXPECT_FALSE(CompileQueryText(
                   "SELECT b.price FROM Stock MATCH PATTERN SEQ(a, b{2,4}, c)",
                   StockSchema())
                   .ok());
}

}  // namespace
}  // namespace cepr
