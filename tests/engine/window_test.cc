#include "engine/window.h"

#include <gtest/gtest.h>

#include "testing/helpers.h"

namespace cepr {
namespace {

using testing::StockSchema;

CompiledQueryPtr Plan(const std::string& text) {
  return CompileQueryText(text, StockSchema()).value();
}

TEST(WindowTest, SingleModeForOnComplete) {
  auto a = ReportWindowAssigner::ForQuery(
      *Plan("SELECT * FROM Stock MATCH PATTERN SEQ(a) EMIT ON COMPLETE"));
  EXPECT_EQ(a.mode(), ReportWindowAssigner::Mode::kSingle);
  EXPECT_EQ(a.WindowOf(0, 0), 0);
  EXPECT_EQ(a.WindowOf(123456789, 999), 0);
}

TEST(WindowTest, TimeModeTumblesWithWithinSpan) {
  auto a = ReportWindowAssigner::ForQuery(
      *Plan("SELECT * FROM Stock MATCH PATTERN SEQ(a) "
            "WITHIN 1 SECONDS EMIT ON WINDOW CLOSE"));
  EXPECT_EQ(a.mode(), ReportWindowAssigner::Mode::kTime);
  EXPECT_EQ(a.WindowOf(0, 0), 0);
  EXPECT_EQ(a.WindowOf(999999, 0), 0);
  EXPECT_EQ(a.WindowOf(1000000, 0), 1);
  EXPECT_EQ(a.WindowOf(2500000, 0), 2);
  EXPECT_EQ(a.WindowStart(2), 2000000);
  EXPECT_EQ(a.WindowEnd(2), 3000000);
}

TEST(WindowTest, CountMode) {
  auto a = ReportWindowAssigner::ForQuery(
      *Plan("SELECT * FROM Stock MATCH PATTERN SEQ(a) EMIT EVERY 100 EVENTS"));
  EXPECT_EQ(a.mode(), ReportWindowAssigner::Mode::kCount);
  EXPECT_EQ(a.WindowOf(9999999, 0), 0);
  EXPECT_EQ(a.WindowOf(0, 99), 0);
  EXPECT_EQ(a.WindowOf(0, 100), 1);
  EXPECT_EQ(a.WindowOf(0, 250), 2);
}

TEST(WindowTest, ToStringDescribesMode) {
  auto a = ReportWindowAssigner::ForQuery(
      *Plan("SELECT * FROM Stock MATCH PATTERN SEQ(a) EMIT EVERY 5 EVENTS"));
  EXPECT_NE(a.ToString().find("every 5 events"), std::string::npos);
}

}  // namespace
}  // namespace cepr
