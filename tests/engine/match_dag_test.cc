// Unit tests for the shared partial-match DAG (engine/match_dag.h):
// eligibility gating, node sharing and summary maintenance, refcount
// lifetime enforcement, arena slot recycling, and end-to-end engagement of
// dag mode (the counters must prove the DAG path actually ran).

#include "engine/match_dag.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "plan/compiler.h"
#include "runtime/engine.h"
#include "runtime/sink.h"
#include "testing/helpers.h"
#include "workload/forkheavy.h"

namespace cepr {
namespace {

using testing::StockSchema;
using testing::Tick;

// The canonical dag-eligible shape: skip-till-any, trailing unbounded
// Kleene-plus with event-only iteration predicates, ranked buffered
// emission.
constexpr char kEligible[] =
    "SELECT a.price, MAX(b.price) "
    "FROM Stock MATCH PATTERN SEQ(a, b+) "
    "USING SKIP_TILL_ANY_MATCH "
    "WHERE a.price < 10 AND b[i].price > 20 "
    "WITHIN 100 MILLISECONDS "
    "RANK BY MAX(b.price) DESC LIMIT 5 EMIT ON WINDOW CLOSE";

CompiledQueryPtr Compile(const std::string& text) {
  auto result = CompileQueryText(text, StockSchema());
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.value();
}

TEST(MatchDagEligibleTest, TrailingKleeneSkipAnyRankedIsEligible) {
  EXPECT_TRUE(MatchDagEligible(*Compile(kEligible)));
}

TEST(MatchDagEligibleTest, SkipTillNextIsNot) {
  EXPECT_FALSE(MatchDagEligible(*Compile(
      "SELECT a.price, MAX(b.price) "
      "FROM Stock MATCH PATTERN SEQ(a, b+) "
      "WHERE a.price < 10 AND b[i].price > 20 "
      "WITHIN 100 MILLISECONDS "
      "RANK BY MAX(b.price) DESC LIMIT 5 EMIT ON WINDOW CLOSE")));
}

TEST(MatchDagEligibleTest, NonTrailingKleeneIsNot) {
  EXPECT_FALSE(MatchDagEligible(*Compile(
      "SELECT a.price, MAX(b.price), c.price "
      "FROM Stock MATCH PATTERN SEQ(a, b+, c) "
      "USING SKIP_TILL_ANY_MATCH "
      "WHERE a.price < 10 AND b[i].price > 20 AND c.price > 30 "
      "WITHIN 100 MILLISECONDS "
      "RANK BY MAX(b.price) DESC LIMIT 5 EMIT ON WINDOW CLOSE")));
}

TEST(MatchDagEligibleTest, CorrelatedIterationPredicateIsNot) {
  // b[i-1] makes the iteration predicate run-dependent: one shared verdict
  // per event no longer decides extension for the whole group.
  EXPECT_FALSE(MatchDagEligible(*Compile(
      "SELECT a.price, MAX(b.price) "
      "FROM Stock MATCH PATTERN SEQ(a, b+) "
      "USING SKIP_TILL_ANY_MATCH "
      "WHERE a.price < 10 AND b[i].price > b[i-1].price "
      "WITHIN 100 MILLISECONDS "
      "RANK BY MAX(b.price) DESC LIMIT 5 EMIT ON WINDOW CLOSE")));
}

TEST(MatchDagEligibleTest, UnrankedIsNot) {
  EXPECT_FALSE(MatchDagEligible(*Compile(
      "SELECT a.price, MAX(b.price) "
      "FROM Stock MATCH PATTERN SEQ(a, b+) "
      "USING SKIP_TILL_ANY_MATCH "
      "WHERE a.price < 10 AND b[i].price > 20 "
      "WITHIN 100 MILLISECONDS LIMIT 5 EMIT ON WINDOW CLOSE")));
}

TEST(MatchDagEligibleTest, EagerEmissionIsNot) {
  // EMIT ON COMPLETE needs matches at detection time; the lazy enumerator
  // only runs at window close.
  EXPECT_FALSE(MatchDagEligible(*Compile(
      "SELECT a.price, MAX(b.price) "
      "FROM Stock MATCH PATTERN SEQ(a, b+) "
      "USING SKIP_TILL_ANY_MATCH "
      "WHERE a.price < 10 AND b[i].price > 20 "
      "WITHIN 100 MILLISECONDS "
      "RANK BY MAX(b.price) DESC LIMIT 5 EMIT ON COMPLETE")));
}

EventPtr MakeTick(Timestamp ts, double price) {
  return std::make_shared<const Event>(Tick(ts, price));
}

TEST(MatchDagStoreTest, NodeSharingAndSummaries) {
  auto plan = Compile(kEligible);
  MatchDagStore store(plan.get());

  DagNode* bottom = store.Bottom();
  DagNode* x1 = store.NewExtend(MakeTick(0, 100), bottom);
  DagNode* u = store.NewUnion(bottom, x1);

  // Three constructions; every edge (extend->prev, union->both children)
  // and the caller references count as sharing events.
  EXPECT_EQ(store.nodes_allocated(), 3u);
  EXPECT_GT(store.nodes_shared(), 0u);
  EXPECT_EQ(store.live_nodes(), 3u);

  // Extend appends one iteration to every path below it.
  EXPECT_EQ(x1->cmin, 1u);
  EXPECT_EQ(x1->cmax, 1u);
  EXPECT_DOUBLE_EQ(x1->paths, 1.0);
  // MAX(b.price) is the single dense slot; the one-event suffix pins it.
  ASSERT_EQ(x1->aggs.size(), 1u);
  EXPECT_DOUBLE_EQ(x1->aggs[0].lo, 100.0);
  EXPECT_DOUBLE_EQ(x1->aggs[0].hi, 100.0);

  // Union merges alternative histories: counts hull, paths add.
  EXPECT_EQ(u->cmin, 0u);
  EXPECT_EQ(u->cmax, 1u);
  EXPECT_DOUBLE_EQ(u->paths, 2.0);

  // A second extend of the same head shares the whole structure below it:
  // one new node regardless of how many paths it extends.
  DagNode* x2 = store.NewExtend(MakeTick(1000, 200), u);
  EXPECT_EQ(store.nodes_allocated(), 4u);
  EXPECT_EQ(x2->cmin, 1u);
  EXPECT_EQ(x2->cmax, 2u);
  EXPECT_DOUBLE_EQ(x2->paths, 2.0);
  // Both paths ({200} and {100, 200}) fold MAX to 200: the interval pins.
  EXPECT_DOUBLE_EQ(x2->aggs[0].lo, 200.0);
  EXPECT_DOUBLE_EQ(x2->aggs[0].hi, 200.0);

  store.Unref(x2);
  store.Unref(u);
  store.Unref(x1);
  store.Unref(bottom);
  // Only bottom survives (the store holds its own reference).
  EXPECT_EQ(store.live_nodes(), 1u);
}

TEST(MatchDagStoreTest, ArenaRecyclesFreedSlots) {
  auto plan = Compile(kEligible);
  MatchDagStore store(plan.get());
  DagNode* bottom = store.Bottom();

  DagNode* x = store.NewExtend(MakeTick(0, 50), bottom);
  store.Unref(x);
  EXPECT_EQ(store.live_nodes(), 1u);  // bottom only

  // The pool freelist is LIFO: the next construction reuses x's slot.
  DagNode* y = store.NewExtend(MakeTick(1000, 60), bottom);
  EXPECT_EQ(y, x);
  EXPECT_EQ(store.live_nodes(), 2u);
  EXPECT_EQ(store.nodes_allocated(), 3u);  // constructions, not slots

  store.Unref(y);
  store.Unref(bottom);
  EXPECT_EQ(store.live_nodes(), 1u);
}

TEST(MatchDagStoreDeathTest, LeakedReferenceFailsAtDestruction) {
  // The store's destructor enforces the ObjectPool contract: every owner
  // must have released its references. A leaked caller reference on bottom
  // is a fatal check, not a silent leak.
  EXPECT_DEATH(
      {
        auto plan = Compile(kEligible);
        MatchDagStore store(plan.get());
        DagNode* bottom = store.Bottom();
        (void)bottom;  // leak the caller reference
      },
      "Check failed");
}

// End-to-end: a fork-heavy workload through the serial engine must engage
// dag mode (nonzero DAG counters) and enumerate matches lazily. This guards
// against the knob silently gating itself off — output equivalence alone
// would pass even if the DAG never ran.
TEST(MatchDagEngineTest, DagModeEngagesOnForkHeavyWorkload) {
  ForkHeavyOptions options;
  options.base.seed = 42;
  options.anchor_probability = 0.2;
  ForkHeavyGenerator gen(options);

  Engine engine;
  ASSERT_TRUE(engine.RegisterSchema(gen.schema()).ok());
  CollectSink sink;
  // SUM(b.price) discriminates between suffix subsets (random float
  // prices), so lazy top-k enumeration stays near O(k). A MAX-style score
  // would tie every subset containing the extreme event, and exact
  // content-tie-broken top-k would have to enumerate the whole plateau.
  const Status s = engine.RegisterQuery(
      "q",
      "SELECT a.price, SUM(b.price) "
      "FROM ForkTick MATCH PATTERN SEQ(a, b+) "
      "USING SKIP_TILL_ANY_MATCH PARTITION BY sym "
      "WHERE a.anchor = 1 AND b[i].anchor = 0 "
      "WITHIN 10 MILLISECONDS "
      "RANK BY SUM(b.price) DESC "
      "LIMIT 10 EMIT ON WINDOW CLOSE",
      QueryOptions{}, &sink);
  ASSERT_TRUE(s.ok()) << s.ToString();

  for (Event& e : gen.Take(2000)) {
    ASSERT_TRUE(engine.Push(std::move(e)).ok());
  }
  engine.Finish();

  ASSERT_FALSE(sink.results().empty());
  const auto metrics = engine.GetQueryMetrics("q");
  ASSERT_TRUE(metrics.ok());
  EXPECT_GT(metrics.value().matcher.dag_nodes_allocated, 0u);
  EXPECT_GT(metrics.value().matcher.dag_nodes_shared, 0u);
  EXPECT_GT(metrics.value().matcher.peak_dag_nodes, 0u);
  EXPECT_GT(metrics.value().matches_enumerated, 0u);
}

}  // namespace
}  // namespace cepr
