#include "engine/matcher.h"

#include <gtest/gtest.h>

#include "testing/helpers.h"

namespace cepr {
namespace {

using testing::StockSchema;
using testing::Tick;

// Test rig: a matcher over one compiled query, fed Stock ticks.
class Rig {
 public:
  explicit Rig(const std::string& query_text,
               MatcherOptions options = MatcherOptions{})
      : plan_(CompileQueryText(query_text, StockSchema()).value()),
        matcher_(plan_, options, nullptr, &stats_, &next_match_id_) {}

  // Pushes one event; returns matches it produced.
  std::vector<Match> Push(Event event, uint64_t sequence) {
    event.set_sequence(sequence);
    std::vector<Match> out;
    matcher_.OnEvent(std::make_shared<const Event>(std::move(event)), &out);
    return out;
  }

  // Pushes a price series (1ms apart) and returns all matches.
  std::vector<Match> PushPrices(const std::vector<double>& prices) {
    std::vector<Match> all;
    uint64_t seq = 0;
    for (double p : prices) {
      auto out = Push(Tick(static_cast<Timestamp>(seq) * 1000, p), seq);
      for (auto& m : out) all.push_back(std::move(m));
      ++seq;
    }
    return all;
  }

  MatcherStats stats() const { return stats_.Snapshot(); }
  size_t active_runs() const { return matcher_.active_runs(); }
  const CompiledQueryPtr& plan() const { return plan_; }

 private:
  CompiledQueryPtr plan_;
  AtomicMatcherStats stats_;
  uint64_t next_match_id_ = 0;
  Matcher matcher_;
};

TEST(MatcherTest, SimpleTwoStepSequence) {
  Rig rig(
      "SELECT a.price, c.price FROM Stock MATCH PATTERN SEQ(a, c) "
      "WHERE a.price < 10 AND c.price > 20");
  const auto matches = rig.PushPrices({5, 15, 25});
  // a=5 -> c=25 (15 is skipped by skip-till-next).
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].row[0], Value::Float(5));
  EXPECT_EQ(matches[0].row[1], Value::Float(25));
}

TEST(MatcherTest, EveryQualifyingStartCreatesARun) {
  Rig rig(
      "SELECT a.price, c.price FROM Stock MATCH PATTERN SEQ(a, c) "
      "WHERE a.price < 10 AND c.price > 20");
  const auto matches = rig.PushPrices({5, 6, 25});
  // Two starts (5 and 6) both complete with 25.
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(rig.stats().runs_created, 2u);
  EXPECT_EQ(rig.stats().runs_completed, 2u);
}

TEST(MatcherTest, KleeneBindsGreedilyUnderSkipTillNext) {
  Rig rig(
      "SELECT COUNT(b), MIN(b.price), c.price "
      "FROM Stock MATCH PATTERN SEQ(a, b+, c) "
      "WHERE b[i].price < b[i-1].price AND b[1].price < a.price "
      "  AND c.price > a.price");
  const auto matches = rig.PushPrices({100, 90, 80, 70, 110});
  // One run from a=100: b = 90,80,70 then c=110. (Runs from 90/80/70 as `a`
  // also exist but their c must beat them; 110 qualifies for all four.)
  ASSERT_GE(matches.size(), 1u);
  const Match& m = matches[0];
  EXPECT_EQ(m.row[0], Value::Int(3));
  EXPECT_EQ(m.row[1], Value::Float(70));
  EXPECT_EQ(m.row[2], Value::Float(110));
}

TEST(MatcherTest, TrailingKleeneEmitsPerExtension) {
  Rig rig(
      "SELECT COUNT(b) FROM Stock MATCH PATTERN SEQ(a, b+) "
      "WHERE a.price > 99 AND b[i].price < a.price");
  const auto matches = rig.PushPrices({100, 50, 40, 30});
  // Each extension of b produces a (growing) match: counts 1, 2, 3.
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0].row[0], Value::Int(1));
  EXPECT_EQ(matches[1].row[0], Value::Int(2));
  EXPECT_EQ(matches[2].row[0], Value::Int(3));
}

TEST(MatcherTest, WithinExpiresRuns) {
  Rig rig(
      "SELECT a.price, c.price FROM Stock MATCH PATTERN SEQ(a, c) "
      "WHERE a.price < 10 AND c.price > 20 "
      "WITHIN 5 MILLISECONDS");
  // Events are 1ms apart: a=5 at t=0 expires before c=25 at t=6ms.
  const auto matches = rig.PushPrices({5, 11, 12, 13, 14, 15, 25});
  EXPECT_TRUE(matches.empty());
  EXPECT_EQ(rig.stats().runs_expired, 1u);
}

TEST(MatcherTest, WithinBoundaryIsInclusive) {
  Rig rig(
      "SELECT a.price FROM Stock MATCH PATTERN SEQ(a, c) "
      "WHERE a.price < 10 AND c.price > 20 "
      "WITHIN 2 MILLISECONDS");
  // c arrives exactly 2ms after a: span == WITHIN passes.
  const auto matches = rig.PushPrices({5, 11, 25});
  EXPECT_EQ(matches.size(), 1u);
}

TEST(MatcherTest, StrictContiguityKillsOnGap) {
  Rig rig(
      "SELECT a.price, c.price FROM Stock MATCH PATTERN SEQ(a, c) "
      "USING STRICT "
      "WHERE a.price < 10 AND c.price > 20");
  // 5, 15, 25: the 15 between a and c kills the strict run.
  EXPECT_TRUE(rig.PushPrices({5, 15, 25}).empty());
  EXPECT_GE(rig.stats().runs_killed_strict, 1u);

  Rig rig2(
      "SELECT a.price, c.price FROM Stock MATCH PATTERN SEQ(a, c) "
      "USING STRICT "
      "WHERE a.price < 10 AND c.price > 20");
  EXPECT_EQ(rig2.PushPrices({5, 25}).size(), 1u);
}

TEST(MatcherTest, StrictContiguityAllowsKleeneRuns) {
  Rig rig(
      "SELECT COUNT(b) FROM Stock MATCH PATTERN SEQ(a, b+, c) "
      "USING STRICT "
      "WHERE a.price > 99 AND b[i].price < b[i-1].price "
      "  AND b[1].price < a.price AND c.price > a.price");
  const auto matches = rig.PushPrices({100, 90, 80, 110});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].row[0], Value::Int(2));
}

TEST(MatcherTest, SkipTillAnyEnumeratesSubsequences) {
  Rig rig(
      "SELECT a.price, c.price FROM Stock MATCH PATTERN SEQ(a, c) "
      "USING SKIP_TILL_ANY_MATCH "
      "WHERE a.price < 10 AND c.price > 20");
  const auto matches = rig.PushPrices({5, 25, 30});
  // a=5 pairs with both 25 and 30.
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].row[1], Value::Float(25));
  EXPECT_EQ(matches[1].row[1], Value::Float(30));
}

TEST(MatcherTest, SkipTillAnyKleeneSubsets) {
  Rig rig(
      "SELECT COUNT(b) FROM Stock MATCH PATTERN SEQ(a, b+, c) "
      "USING SKIP_TILL_ANY_MATCH "
      "WHERE a.price > 99 AND b[i].price < a.price AND b[i].price > 10 "
      "  AND c.price > a.price");
  // a=100; b-candidates: 50, 40; c=110.
  // Subsets of {50,40} with >=1 element: {50},{40},{50,40} -> 3 matches.
  const auto matches = rig.PushPrices({100, 50, 40, 110});
  ASSERT_EQ(matches.size(), 3u);
  int total = 0;
  for (const auto& m : matches) total += static_cast<int>(m.row[0].AsInt());
  EXPECT_EQ(total, 1 + 1 + 2);
}

TEST(MatcherTest, NegationKillsWaitingRuns) {
  Rig rig(
      "SELECT a.price, c.price FROM Stock MATCH PATTERN SEQ(a, !n, c) "
      "WHERE a.price < 10 AND n.price > 500 AND c.price > 20 AND c.price < 400");
  // Without the spike: match. With a >500 spike between: killed.
  EXPECT_EQ(rig.PushPrices({5, 25}).size(), 1u);

  Rig rig2(
      "SELECT a.price, c.price FROM Stock MATCH PATTERN SEQ(a, !n, c) "
      "WHERE a.price < 10 AND n.price > 500 AND c.price > 20 AND c.price < 400");
  EXPECT_TRUE(rig2.PushPrices({5, 600, 25}).empty());
  EXPECT_EQ(rig2.stats().runs_killed_negation, 1u);
}

TEST(MatcherTest, NegationEventCanStillBeTheNextComponent) {
  // An event matching both c's begin predicate and n's predicate binds c —
  // it is not "between" a and c.
  Rig rig(
      "SELECT c.price FROM Stock MATCH PATTERN SEQ(a, !n, c) "
      "WHERE a.price < 10 AND n.price > 20 AND c.price > 20");
  const auto matches = rig.PushPrices({5, 25});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].row[0], Value::Float(25));
}

TEST(MatcherTest, ExitPredicateGatesTransitionWithoutKillingRun) {
  Rig rig(
      "SELECT COUNT(b), c.price FROM Stock MATCH PATTERN SEQ(a, b+, c) "
      "WHERE a.price > 99 AND b[i].price < a.price "
      "  AND COUNT(b) >= 3 AND c.price > a.price");
  // First candidate c (at count=2) must NOT close the pattern; after a third
  // b the next c can.
  const auto matches = rig.PushPrices({100, 50, 40, 110, 30, 120});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_GE(matches[0].row[0].AsInt(), 3);
  EXPECT_EQ(matches[0].row[1], Value::Float(120));
}

TEST(MatcherTest, TypeTagsFilterComponents) {
  Rig rig(
      "SELECT a.price, c.price FROM Stock MATCH PATTERN SEQ(Buy a, Sell c)");
  uint64_t seq = 0;
  std::vector<Match> all;
  auto push = [&](const std::string& tag, double price) {
    Event e = Tick(static_cast<Timestamp>(seq) * 1000, price);
    e.set_type_tag(tag);
    auto out = rig.Push(std::move(e), seq++);
    for (auto& m : out) all.push_back(std::move(m));
  };
  push("Sell", 1);  // cannot start (needs Buy)
  push("Buy", 2);
  push("Hold", 3);  // ignored
  push("Sell", 4);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].row[0], Value::Float(2));
  EXPECT_EQ(all[0].row[1], Value::Float(4));
}

TEST(MatcherTest, CapacityDropsOldestRun) {
  MatcherOptions options;
  options.max_active_runs = 2;
  Rig rig(
      "SELECT a.price, c.price FROM Stock MATCH PATTERN SEQ(a, c) "
      "WHERE a.price < 10 AND c.price > 20",
      options);
  // Three starts with capacity 2: the first run (a=1) is dropped.
  const auto matches = rig.PushPrices({1, 2, 3, 25});
  EXPECT_EQ(rig.stats().runs_dropped_capacity, 1u);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].row[0], Value::Float(2));
  EXPECT_EQ(matches[1].row[0], Value::Float(3));
}

TEST(MatcherTest, MatchMetadataSpansAndIds) {
  Rig rig(
      "SELECT a.price FROM Stock MATCH PATTERN SEQ(a, c) "
      "WHERE a.price < 10 AND c.price > 20");
  const auto matches = rig.PushPrices({5, 6, 25});
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].id, 0u);
  EXPECT_EQ(matches[1].id, 1u);
  EXPECT_EQ(matches[0].first_ts, 0);
  EXPECT_EQ(matches[0].last_ts, 2000);
  EXPECT_EQ(matches[1].first_ts, 1000);
}

TEST(MatcherTest, MatchBindingsExposeEvents) {
  Rig rig(
      "SELECT COUNT(b) FROM Stock MATCH PATTERN SEQ(a, b+, c) "
      "WHERE a.price > 99 AND b[i].price < a.price AND c.price > a.price");
  const auto matches = rig.PushPrices({100, 50, 40, 110});
  ASSERT_EQ(matches.size(), 1u);
  const Match& m = matches[0];
  ASSERT_EQ(m.bindings.size(), 3u);
  EXPECT_EQ(m.bindings[0].size(), 1u);  // a
  EXPECT_EQ(m.bindings[1].size(), 2u);  // b
  EXPECT_EQ(m.bindings[2].size(), 1u);  // c
  EXPECT_EQ(m.bindings[1][1]->ValueOf("price").value(), Value::Float(40));
}

TEST(MatcherTest, UnrankedScoreIsZero) {
  Rig rig("SELECT a.price FROM Stock MATCH PATTERN SEQ(a)");
  const auto matches = rig.PushPrices({5});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].score, 0.0);
}

TEST(MatcherTest, RankedScoreEvaluatedAtDetection) {
  Rig rig(
      "SELECT a.price FROM Stock MATCH PATTERN SEQ(a, c) "
      "WHERE c.price > a.price "
      "RANK BY c.price - a.price DESC");
  const auto matches = rig.PushPrices({10, 25});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_DOUBLE_EQ(matches[0].score, 15.0);
}

TEST(MatcherTest, SingleComponentPatternMatchesEveryQualifyingEvent) {
  Rig rig("SELECT a.price FROM Stock MATCH PATTERN SEQ(a) WHERE a.price > 10");
  const auto matches = rig.PushPrices({5, 15, 20});
  EXPECT_EQ(matches.size(), 2u);
  EXPECT_EQ(rig.active_runs(), 0u);  // single-step runs retire immediately
}

TEST(MatcherTest, PeakRunsTracked) {
  Rig rig(
      "SELECT a.price FROM Stock MATCH PATTERN SEQ(a, c) "
      "WHERE a.price < 10 AND c.price > 1000");  // c never fires
  rig.PushPrices({1, 2, 3, 4});
  EXPECT_EQ(rig.stats().peak_active_runs, 4u);
  EXPECT_EQ(rig.active_runs(), 4u);
}

}  // namespace
}  // namespace cepr
