#include "plan/compiler.h"

#include <cmath>

#include <gtest/gtest.h>

#include "testing/helpers.h"

namespace cepr {
namespace {

using testing::StockSchema;

Result<CompiledQueryPtr> CompileText(const std::string& text) {
  return CompileQueryText(text, StockSchema());
}

TEST(CompilerTest, ComponentsExcludeNegations) {
  auto q = CompileText(
      "SELECT * FROM Stock MATCH PATTERN SEQ(a, b+, !n, c)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const CompiledPattern& p = (*q)->pattern;
  ASSERT_EQ(p.components.size(), 3u);  // a, b, c
  EXPECT_FALSE(p.components[0].is_kleene);
  EXPECT_TRUE(p.components[1].is_kleene);
  // The watcher for !n hangs off c (the component it precedes).
  EXPECT_FALSE(p.components[1].negation_before.has_value());
  ASSERT_TRUE(p.components[2].negation_before.has_value());
  EXPECT_EQ(p.components[2].negation_before->var_index, 2);
  // Variable positions: a->0, b->1, n->-1, c->2.
  EXPECT_EQ(p.position_of_var, (std::vector<int>{0, 1, -1, 2}));
}

TEST(CompilerTest, PredicatePushdownByLatestVariable) {
  auto q = CompileText(
      "SELECT * FROM Stock MATCH PATTERN SEQ(a, b+, c) "
      "WHERE a.price > 10 AND b[i].price < a.price AND c.price > a.price");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const CompiledPattern& p = (*q)->pattern;
  ASSERT_EQ(p.components[0].begin_preds.size(), 1u);
  EXPECT_EQ(p.components[0].begin_preds[0]->ToString(), "(a.price > 10)");
  ASSERT_EQ(p.components[1].iter_preds.size(), 1u);
  EXPECT_EQ(p.components[1].iter_preds[0]->ToString(), "(b[i].price < a.price)");
  ASSERT_EQ(p.components[2].begin_preds.size(), 1u);
  EXPECT_EQ(p.components[2].begin_preds[0]->ToString(), "(c.price > a.price)");
}

TEST(CompilerTest, AggregateOnlyKleeneConstraintBecomesExitPred) {
  auto q = CompileText(
      "SELECT * FROM Stock MATCH PATTERN SEQ(a, b+, c) "
      "WHERE SUM(b.volume) > 100");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const CompiledComponent& b = (*q)->pattern.components[1];
  EXPECT_TRUE(b.iter_preds.empty());
  ASSERT_EQ(b.exit_preds.size(), 1u);
  EXPECT_EQ(b.exit_preds[0]->ToString(), "(SUM(b.volume) > 100)");
}

TEST(CompilerTest, IterPredUsesPrevFlagged) {
  auto q = CompileText(
      "SELECT * FROM Stock MATCH PATTERN SEQ(a, b+, c) "
      "WHERE b[i].price < b[i-1].price AND b[i].volume > 0");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const CompiledComponent& b = (*q)->pattern.components[1];
  ASSERT_EQ(b.iter_preds.size(), 2u);
  ASSERT_EQ(b.iter_pred_uses_prev.size(), 2u);
  EXPECT_TRUE(b.iter_pred_uses_prev[0]);
  EXPECT_FALSE(b.iter_pred_uses_prev[1]);
}

TEST(CompilerTest, ConstantConjunctGuardsFirstComponent) {
  auto q = CompileText(
      "SELECT * FROM Stock MATCH PATTERN SEQ(a, c) WHERE 1 < 2");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ((*q)->pattern.components[0].begin_preds.size(), 1u);
}

TEST(CompilerTest, NegationPredicatesAttachToWatcher) {
  auto q = CompileText(
      "SELECT * FROM Stock MATCH PATTERN SEQ(a, !n, c) "
      "WHERE n.price > a.price AND c.volume > 0");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const CompiledComponent& c = (*q)->pattern.components[1];
  ASSERT_TRUE(c.negation_before.has_value());
  ASSERT_EQ(c.negation_before->preds.size(), 1u);
  EXPECT_EQ(c.negation_before->preds[0]->ToString(), "(n.price > a.price)");
  EXPECT_EQ(c.begin_preds.size(), 1u);
}

TEST(CompilerTest, NegationCannotSeeLaterVariables) {
  auto q = CompileText(
      "SELECT * FROM Stock MATCH PATTERN SEQ(a, !n, c) "
      "WHERE n.price > c.price");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("not yet bound"), std::string::npos);
}

TEST(CompilerTest, CurrentIterationOfEarlierKleeneRejected) {
  auto q = CompileText(
      "SELECT * FROM Stock MATCH PATTERN SEQ(a, b+, c) "
      "WHERE b[i].price < c.price");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("current-iteration"), std::string::npos);
}

TEST(CompilerTest, EventOnlyPredicatesGetCacheIds) {
  auto q = CompileText(
      "SELECT * FROM Stock MATCH PATTERN SEQ(a, b+, c) "
      "WHERE a.price > 10 AND b[i].price < 90 AND b[i].price < a.price "
      "  AND c.price > a.price AND COUNT(b) >= 1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const CompiledPattern& p = (*q)->pattern;
  // "a.price > 10" touches only the candidate event of a: cacheable.
  ASSERT_EQ(p.components[0].begin_pred_cache_ids.size(),
            p.components[0].begin_preds.size());
  EXPECT_GE(p.components[0].begin_pred_cache_ids[0], 0);
  // "b[i].price < 90" is event-only; "b[i].price < a.price" correlates
  // with an earlier binding and must be re-evaluated per run.
  ASSERT_EQ(p.components[1].iter_pred_cache_ids.size(), 2u);
  const int cached =
      p.components[1].iter_preds[0]->ToString() == "(b[i].price < 90)" ? 0 : 1;
  EXPECT_GE(p.components[1].iter_pred_cache_ids[static_cast<size_t>(cached)], 0);
  EXPECT_EQ(p.components[1].iter_pred_cache_ids[static_cast<size_t>(1 - cached)],
            -1);
  // "c.price > a.price" is correlated.
  EXPECT_EQ(p.components[2].begin_pred_cache_ids[0], -1);
  // Cache ids are dense: one slot per event-only conjunct.
  EXPECT_EQ(p.num_event_preds, 2);
}

TEST(CompilerTest, NegationPredicatesClassifiedToo) {
  auto q = CompileText(
      "SELECT * FROM Stock MATCH PATTERN SEQ(a, !n, c) "
      "WHERE n.price > 100 AND c.price > a.price");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const CompiledPattern& p = (*q)->pattern;
  ASSERT_TRUE(p.components[1].negation_before.has_value());
  const CompiledNegation& neg = *p.components[1].negation_before;
  ASSERT_EQ(neg.pred_cache_ids.size(), neg.preds.size());
  ASSERT_EQ(neg.preds.size(), 1u);
  EXPECT_GE(neg.pred_cache_ids[0], 0);
  EXPECT_EQ(p.num_event_preds, 1);
}

TEST(CompilerTest, AggSlotsSharedBetweenWhereAndRank) {
  auto q = CompileText(
      "SELECT MIN(b.price) FROM Stock MATCH PATTERN SEQ(a, b+, c) "
      "WHERE MIN(b.price) > 2 "
      "RANK BY MIN(b.price) DESC");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ((*q)->pattern.agg_specs.size(), 1u);
  EXPECT_EQ((*q)->score->agg_slot, 0);
}

TEST(CompilerTest, PrunableWithDeclaredRanges) {
  auto q = CompileText(
      "SELECT * FROM Stock MATCH PATTERN SEQ(a, b+, c) "
      "RANK BY (a.price - MIN(b.price)) / a.price DESC LIMIT 5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE((*q)->score_prunable);
}

TEST(CompilerTest, NotPrunableWithoutRanges) {
  auto schema =
      Schema::Make("Bare", {Attribute{"x", ValueType::kFloat, std::nullopt}})
          .value();
  auto q = CompileQueryText(
      "SELECT * FROM Bare MATCH PATTERN SEQ(a, b+) RANK BY MAX(b.x) DESC",
      schema);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_FALSE((*q)->score_prunable);
}

TEST(CompilerTest, CountScoreNotPrunableDescButPrunableAsc) {
  // COUNT is unbounded above, so a DESC rank has no finite upper bound, but
  // an ASC rank does have a finite lower bound.
  auto desc = CompileText(
      "SELECT * FROM Stock MATCH PATTERN SEQ(a, b+) RANK BY COUNT(b) DESC");
  ASSERT_TRUE(desc.ok());
  EXPECT_FALSE((*desc)->score_prunable);
  auto asc = CompileText(
      "SELECT * FROM Stock MATCH PATTERN SEQ(a, b+) RANK BY COUNT(b) ASC");
  ASSERT_TRUE(asc.ok());
  EXPECT_TRUE((*asc)->score_prunable);
}

TEST(CompilerTest, AttrRangesMirrorSchema) {
  auto q = CompileText("SELECT * FROM Stock MATCH PATTERN SEQ(a)");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ((*q)->attr_ranges.size(), 3u);
  EXPECT_EQ((*q)->attr_ranges[1].lo, 1.0);      // price
  EXPECT_EQ((*q)->attr_ranges[1].hi, 1000.0);
  EXPECT_EQ((*q)->attr_ranges[2].hi, 10000.0);  // volume
  // symbol (STRING, no range) is whole.
  EXPECT_TRUE(std::isinf((*q)->attr_ranges[0].hi));
}

TEST(CompilerTest, DescribeMentionsKeyPieces) {
  auto q = CompileText(
      "SELECT * FROM Stock MATCH PATTERN SEQ(a, b+, c) "
      "WHERE b[i].price < a.price "
      "RANK BY COUNT(b) ASC LIMIT 2 EMIT EVERY 10 EVENTS");
  ASSERT_TRUE(q.ok());
  const std::string desc = (*q)->Describe();
  EXPECT_NE(desc.find("component 1: b+"), std::string::npos);
  EXPECT_NE(desc.find("rank by"), std::string::npos);
  EXPECT_NE(desc.find("limit: 2"), std::string::npos);
}

}  // namespace
}  // namespace cepr
