#include "plan/nfa.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "plan/compiler.h"
#include "testing/helpers.h"

namespace cepr {
namespace {

using testing::StockSchema;

CompiledQueryPtr Plan(const std::string& text) {
  auto q = CompileQueryText(text, StockSchema());
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return q.value();
}

size_t CountEdges(const NfaPlan& nfa, NfaEdgeKind kind) {
  size_t n = 0;
  for (const NfaEdge& e : nfa.edges()) {
    if (e.kind == kind) ++n;
  }
  return n;
}

TEST(NfaTest, LinearPatternShape) {
  auto q = Plan("SELECT * FROM Stock MATCH PATTERN SEQ(a, b, c)");
  const NfaPlan& nfa = q->nfa;
  ASSERT_EQ(nfa.states().size(), 4u);  // q0..q3
  EXPECT_EQ(nfa.accepting_state(), 3);
  EXPECT_EQ(CountEdges(nfa, NfaEdgeKind::kBegin), 3u);
  EXPECT_EQ(CountEdges(nfa, NfaEdgeKind::kTake), 0u);
  EXPECT_EQ(CountEdges(nfa, NfaEdgeKind::kKill), 0u);
}

TEST(NfaTest, KleeneAddsSelfLoop) {
  auto q = Plan("SELECT * FROM Stock MATCH PATTERN SEQ(a, b+, c)");
  const NfaPlan& nfa = q->nfa;
  EXPECT_EQ(CountEdges(nfa, NfaEdgeKind::kTake), 1u);
  // The take edge loops on the state after b began.
  for (const NfaEdge& e : nfa.edges()) {
    if (e.kind == NfaEdgeKind::kTake) {
      EXPECT_EQ(e.from_state, e.to_state);
      EXPECT_EQ(e.from_state, 2);
      EXPECT_EQ(e.component, 1);
    }
  }
  EXPECT_EQ(nfa.states()[2].open_kleene_component, 1);
}

TEST(NfaTest, NegationAddsKillEdge) {
  auto q = Plan("SELECT * FROM Stock MATCH PATTERN SEQ(a, !n, c)");
  const NfaPlan& nfa = q->nfa;
  ASSERT_EQ(CountEdges(nfa, NfaEdgeKind::kKill), 1u);
  for (const NfaEdge& e : nfa.edges()) {
    if (e.kind == NfaEdgeKind::kKill) {
      EXPECT_EQ(e.from_state, 1);  // while waiting to begin c
      EXPECT_EQ(e.to_state, -1);
    }
  }
}

TEST(NfaTest, EdgeLabelsCarryGuards) {
  auto q = Plan(
      "SELECT * FROM Stock MATCH PATTERN SEQ(a, c) WHERE c.price > a.price");
  bool found = false;
  for (const NfaEdge& e : q->nfa.edges()) {
    if (e.kind == NfaEdgeKind::kBegin && e.component == 1) {
      EXPECT_NE(e.label.find("(c.price > a.price)"), std::string::npos);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(NfaTest, StateNamesSequential) {
  auto q = Plan("SELECT * FROM Stock MATCH PATTERN SEQ(a, b)");
  ASSERT_EQ(q->nfa.states().size(), 3u);
  EXPECT_EQ(q->nfa.states()[0].name, "q0");
  EXPECT_EQ(q->nfa.states()[2].name, "q2");
  EXPECT_TRUE(q->nfa.states()[2].accepting);
  EXPECT_FALSE(q->nfa.states()[0].accepting);
}

TEST(NfaTest, ToDotIsWellFormed) {
  auto q = Plan(
      "SELECT * FROM Stock MATCH PATTERN SEQ(a, b+, !n, c) "
      "WHERE b[i].price < a.price");
  const std::string dot = q->nfa.ToDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("q0 -> q1"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("kill"), std::string::npos);
  // Balanced braces.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(NfaTest, SingleComponentPattern) {
  auto q = Plan("SELECT * FROM Stock MATCH PATTERN SEQ(a)");
  EXPECT_EQ(q->nfa.states().size(), 2u);
  EXPECT_EQ(q->nfa.accepting_state(), 1);
}

}  // namespace
}  // namespace cepr
