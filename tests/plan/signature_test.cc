#include "plan/signature.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "testing/helpers.h"

namespace cepr {
namespace {

using testing::StockSchema;

CompiledQueryPtr MustCompile(const std::string& text) {
  auto q = CompileQueryText(text, StockSchema());
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

constexpr const char* kDipTemplate =
    "SELECT a.symbol, a.price, MIN(b.price), c.price "
    "FROM Stock MATCH PATTERN SEQ(a, b+, c) "
    "PARTITION BY symbol "
    "WHERE b[i].price < b[i-1].price AND b[1].price < a.price "
    "  AND c.price > a.price AND a.price > ";

TEST(SignatureTest, ConstantsAreSlotted) {
  const auto q1 = MustCompile(std::string(kDipTemplate) +
                              "10 WITHIN 100 MILLISECONDS "
                              "RANK BY (a.price - MIN(b.price)) / a.price DESC "
                              "LIMIT 5 EMIT ON WINDOW CLOSE");
  const auto q2 = MustCompile(std::string(kDipTemplate) +
                              "250 WITHIN 100 MILLISECONDS "
                              "RANK BY (a.price - MIN(b.price)) / a.price DESC "
                              "LIMIT 5 EMIT ON WINDOW CLOSE");
  ASSERT_FALSE(q1->template_signature.empty());
  EXPECT_EQ(q1->template_signature, q2->template_signature);
  // The differing anchor threshold lives in the slot table, not the
  // signature.
  EXPECT_NE(q1->template_params, q2->template_params);
  EXPECT_NE(q1->template_signature.find('?'), std::string::npos);
}

TEST(SignatureTest, LimitIsSlotted) {
  const auto q1 = MustCompile(std::string(kDipTemplate) +
                              "10 WITHIN 100 MILLISECONDS "
                              "RANK BY a.price DESC LIMIT 5 EMIT ON WINDOW CLOSE");
  const auto q2 = MustCompile(std::string(kDipTemplate) +
                              "10 WITHIN 100 MILLISECONDS "
                              "RANK BY a.price DESC LIMIT 50 EMIT ON WINDOW CLOSE");
  EXPECT_EQ(q1->template_signature, q2->template_signature);
}

TEST(SignatureTest, StructureIsNotSlotted) {
  const std::string base = std::string(kDipTemplate) +
                           "10 WITHIN 100 MILLISECONDS "
                           "RANK BY a.price DESC LIMIT 5 EMIT ON WINDOW CLOSE";
  const auto q = MustCompile(base);
  // Different strategy.
  const auto strategy = MustCompile(
      "SELECT a.symbol, a.price, MIN(b.price), c.price "
      "FROM Stock MATCH PATTERN SEQ(a, b+, c) USING SKIP_TILL_ANY_MATCH "
      "PARTITION BY symbol "
      "WHERE b[i].price < b[i-1].price AND b[1].price < a.price "
      "  AND c.price > a.price AND a.price > 10 "
      "WITHIN 100 MILLISECONDS "
      "RANK BY a.price DESC LIMIT 5 EMIT ON WINDOW CLOSE");
  EXPECT_NE(q->template_signature, strategy->template_signature);
  // Different rank direction.
  const auto asc = MustCompile(std::string(kDipTemplate) +
                               "10 WITHIN 100 MILLISECONDS "
                               "RANK BY a.price ASC LIMIT 5 EMIT ON WINDOW CLOSE");
  EXPECT_NE(q->template_signature, asc->template_signature);
  // Different predicate shape (>= instead of >).
  const auto shape = MustCompile(
      "SELECT a.symbol, a.price, MIN(b.price), c.price "
      "FROM Stock MATCH PATTERN SEQ(a, b+, c) "
      "PARTITION BY symbol "
      "WHERE b[i].price < b[i-1].price AND b[1].price < a.price "
      "  AND c.price > a.price AND a.price >= 10 "
      "WITHIN 100 MILLISECONDS "
      "RANK BY a.price DESC LIMIT 5 EMIT ON WINDOW CLOSE");
  EXPECT_NE(q->template_signature, shape->template_signature);
}

TEST(SignatureTest, WindowSpanIsStructural) {
  const auto q1 = MustCompile(std::string(kDipTemplate) +
                              "10 WITHIN 100 MILLISECONDS "
                              "RANK BY a.price DESC LIMIT 5 EMIT ON WINDOW CLOSE");
  const auto q2 = MustCompile(std::string(kDipTemplate) +
                              "10 WITHIN 200 MILLISECONDS "
                              "RANK BY a.price DESC LIMIT 5 EMIT ON WINDOW CLOSE");
  // WITHIN changes when runs expire, which changes matcher behavior in
  // ways a slot cannot capture: it must split the template.
  EXPECT_NE(q1->template_signature, q2->template_signature);
}

TEST(TemplateRegistryTest, DedupesEqualSignatures) {
  const auto q1 = MustCompile(std::string(kDipTemplate) +
                              "10 WITHIN 100 MILLISECONDS "
                              "RANK BY a.price DESC LIMIT 5 EMIT ON WINDOW CLOSE");
  const auto q2 = MustCompile(std::string(kDipTemplate) +
                              "990 WITHIN 100 MILLISECONDS "
                              "RANK BY a.price DESC LIMIT 7 EMIT ON WINDOW CLOSE");
  TemplateRegistry registry;
  bool deduped = true;
  const auto t1 = registry.Intern(*q1, &deduped);
  ASSERT_NE(t1, nullptr);
  EXPECT_FALSE(deduped);
  const auto t2 = registry.Intern(*q2, &deduped);
  EXPECT_TRUE(deduped);
  EXPECT_EQ(t1.get(), t2.get());
  EXPECT_EQ(registry.live_templates(), 1u);
}

TEST(TemplateRegistryTest, DistinctSignaturesGetDistinctTemplates) {
  const auto q1 = MustCompile(std::string(kDipTemplate) +
                              "10 WITHIN 100 MILLISECONDS "
                              "RANK BY a.price DESC LIMIT 5 EMIT ON WINDOW CLOSE");
  const auto q2 = MustCompile(
      "SELECT a.symbol FROM Stock MATCH PATTERN SEQ(a, b) "
      "WHERE b.price > a.price WITHIN 10 MILLISECONDS "
      "RANK BY b.price DESC LIMIT 5 EMIT ON WINDOW CLOSE");
  TemplateRegistry registry;
  bool deduped = false;
  const auto t1 = registry.Intern(*q1, &deduped);
  const auto t2 = registry.Intern(*q2, &deduped);
  EXPECT_FALSE(deduped);
  EXPECT_NE(t1.get(), t2.get());
  EXPECT_EQ(registry.live_templates(), 2u);
}

TEST(TemplateRegistryTest, TemplateDiesWithLastHolder) {
  const auto q = MustCompile(std::string(kDipTemplate) +
                             "10 WITHIN 100 MILLISECONDS "
                             "RANK BY a.price DESC LIMIT 5 EMIT ON WINDOW CLOSE");
  TemplateRegistry registry;
  bool deduped = false;
  auto t1 = registry.Intern(*q, &deduped);
  auto t2 = registry.Intern(*q, &deduped);
  EXPECT_TRUE(deduped);
  EXPECT_EQ(registry.live_templates(), 1u);
  t1.reset();
  EXPECT_EQ(registry.live_templates(), 1u);  // t2 still holds it
  t2.reset();
  EXPECT_EQ(registry.live_templates(), 0u);
  // Re-interning after death builds a fresh template (no dangling entry).
  auto t3 = registry.Intern(*q, &deduped);
  EXPECT_FALSE(deduped);
  ASSERT_NE(t3, nullptr);
  EXPECT_EQ(registry.live_templates(), 1u);
}

}  // namespace
}  // namespace cepr
