#include "expr/eval.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "expr/aggregate.h"
#include "expr/typecheck.h"
#include "lang/parser.h"
#include "testing/helpers.h"

namespace cepr {
namespace {

using testing::AbcLayout;
using testing::FakeContext;
using testing::Tick;

// Parses, type checks (output context unless the text is boolean), assigns
// aggregate slots, and evaluates against `ctx`.
Value Eval(const std::string& text, const FakeContext& ctx,
           ExprContext context = ExprContext::kOutput) {
  auto layout = AbcLayout();
  auto e = ParseExpression(text);
  EXPECT_TRUE(e.ok()) << e.status().ToString();
  auto st = TypeCheck(e->get(), layout, context);
  EXPECT_TRUE(st.ok()) << st.ToString();
  std::vector<Expr*> exprs = {e->get()};
  AssignAggSlots(exprs);
  auto v = Evaluate(**e, ctx);
  EXPECT_TRUE(v.ok()) << v.status().ToString();
  return v.ok() ? *v : Value::Null();
}

TEST(EvalTest, Literals) {
  FakeContext ctx(3);
  EXPECT_EQ(Eval("42", ctx), Value::Int(42));
  EXPECT_EQ(Eval("2.5", ctx), Value::Float(2.5));
  EXPECT_EQ(Eval("'hi'", ctx), Value::String("hi"));
  EXPECT_EQ(Eval("TRUE", ctx), Value::Bool(true));
  EXPECT_EQ(Eval("NULL", ctx), Value::Null());
}

TEST(EvalTest, Arithmetic) {
  FakeContext ctx(3);
  EXPECT_EQ(Eval("2 + 3 * 4", ctx), Value::Int(14));
  EXPECT_EQ(Eval("(2 + 3) * 4", ctx), Value::Int(20));
  EXPECT_EQ(Eval("7 - 10", ctx), Value::Int(-3));
  EXPECT_EQ(Eval("7 / 2", ctx), Value::Float(3.5));
  EXPECT_EQ(Eval("7 % 3", ctx), Value::Int(1));
  EXPECT_EQ(Eval("-(3 + 4)", ctx), Value::Int(-7));
  EXPECT_EQ(Eval("2.5 + 1", ctx), Value::Float(3.5));
}

TEST(EvalTest, DivisionAndModByZeroYieldNull) {
  FakeContext ctx(3);
  EXPECT_TRUE(Eval("1 / 0", ctx).is_null());
  EXPECT_TRUE(Eval("1 % 0", ctx).is_null());
}

TEST(EvalTest, Comparisons) {
  FakeContext ctx(3);
  EXPECT_EQ(Eval("1 < 2", ctx, ExprContext::kPredicate), Value::Bool(true));
  EXPECT_EQ(Eval("2 <= 2", ctx, ExprContext::kPredicate), Value::Bool(true));
  EXPECT_EQ(Eval("1 > 2", ctx, ExprContext::kPredicate), Value::Bool(false));
  EXPECT_EQ(Eval("2 >= 3", ctx, ExprContext::kPredicate), Value::Bool(false));
  EXPECT_EQ(Eval("2 = 2.0", ctx, ExprContext::kPredicate), Value::Bool(true));
  EXPECT_EQ(Eval("2 != 2.0", ctx, ExprContext::kPredicate), Value::Bool(false));
  EXPECT_EQ(Eval("'abc' < 'abd'", ctx, ExprContext::kPredicate), Value::Bool(true));
  EXPECT_EQ(Eval("'b' >= 'b'", ctx, ExprContext::kPredicate), Value::Bool(true));
}

TEST(EvalTest, ThreeValuedLogic) {
  FakeContext ctx(3);
  // FALSE dominates AND; TRUE dominates OR, even against NULL.
  EXPECT_EQ(Eval("FALSE AND (NULL = 1)", ctx, ExprContext::kPredicate),
            Value::Bool(false));
  EXPECT_EQ(Eval("TRUE OR (NULL = 1)", ctx, ExprContext::kPredicate),
            Value::Bool(true));
  EXPECT_TRUE(Eval("TRUE AND (NULL = 1)", ctx, ExprContext::kPredicate).is_null());
  EXPECT_TRUE(Eval("FALSE OR (NULL = 1)", ctx, ExprContext::kPredicate).is_null());
  EXPECT_EQ(Eval("NOT (1 > 2)", ctx, ExprContext::kPredicate), Value::Bool(true));
}

TEST(EvalTest, NullPropagatesThroughArithmetic) {
  FakeContext ctx(3);  // a unbound -> a.price is NULL
  EXPECT_TRUE(Eval("a.price + 1", ctx).is_null());
  EXPECT_TRUE(Eval("-a.price", ctx).is_null());
  EXPECT_TRUE(Eval("ABS(a.price)", ctx).is_null());
}

TEST(EvalTest, NullEqualsNullIsTrue) {
  FakeContext ctx(3);
  EXPECT_EQ(Eval("NULL = NULL", ctx, ExprContext::kPredicate), Value::Bool(true));
  EXPECT_EQ(Eval("NULL != NULL", ctx, ExprContext::kPredicate), Value::Bool(false));
  EXPECT_TRUE(Eval("a.price = NULL", ctx, ExprContext::kPredicate).is_null() ||
              Eval("a.price = NULL", ctx, ExprContext::kPredicate) ==
                  Value::Bool(true));
}

TEST(EvalTest, VarRefReadsBoundEvent) {
  FakeContext ctx(3);
  ctx.Bind(0, Tick(1000, 42.5, 7, "IBM"));
  EXPECT_EQ(Eval("a.price", ctx), Value::Float(42.5));
  EXPECT_EQ(Eval("a.symbol", ctx), Value::String("IBM"));
  EXPECT_EQ(Eval("a.volume", ctx), Value::Int(7));
  EXPECT_EQ(Eval("a.ts", ctx), Value::Int(1000));
}

TEST(EvalTest, IterRefsAddressKleeneBinding) {
  FakeContext ctx(3);
  ctx.Bind(1, Tick(1, 10)).Bind(1, Tick(2, 20)).Bind(1, Tick(3, 30));
  const Event cand = Tick(4, 40);
  ctx.Candidate(1, &cand);
  EXPECT_EQ(Eval("b[i].price = 40", ctx, ExprContext::kPredicate),
            Value::Bool(true));
  EXPECT_EQ(Eval("b[i-1].price = 30", ctx, ExprContext::kPredicate),
            Value::Bool(true));
  EXPECT_EQ(Eval("b[1].price = 10", ctx, ExprContext::kPredicate),
            Value::Bool(true));
  EXPECT_EQ(Eval("b[i].price > b[i-1].price AND b[i-1].price > b[1].price", ctx,
                 ExprContext::kPredicate),
            Value::Bool(true));
}

// Helper: wraps a predicate evaluation with proper resolution.
bool Predicate(const std::string& text, const FakeContext& ctx) {
  auto layout = AbcLayout();
  auto e = ParseExpression(text).value();
  EXPECT_TRUE(TypeCheck(e.get(), layout, ExprContext::kPredicate).ok());
  std::vector<Expr*> exprs = {e.get()};
  AssignAggSlots(exprs);
  auto r = EvaluatePredicate(*e, ctx);
  EXPECT_TRUE(r.ok());
  return r.ok() && r.value();
}

TEST(EvalTest, EvaluatePredicateNullIsFalse) {
  FakeContext ctx(3);  // everything unbound
  EXPECT_FALSE(Predicate("a.price > 10", ctx));
  ctx.Bind(0, Tick(1, 50));
  EXPECT_TRUE(Predicate("a.price > 10", ctx));
}

TEST(EvalTest, AggregatesFromContext) {
  FakeContext ctx(3);
  ctx.Bind(1, Tick(1, 10, 5)).Bind(1, Tick(2, 20, 6));
  // MIN/MAX/SUM read their slot; FIRST/LAST/COUNT read bindings directly.
  EXPECT_EQ(Eval("COUNT(b)", ctx), Value::Int(2));
  EXPECT_EQ(Eval("FIRST(b).price", ctx), Value::Float(10));
  EXPECT_EQ(Eval("LAST(b).price", ctx), Value::Float(20));

  // Slot 0 will be assigned to the single aggregate in each expression.
  ctx.Slot(0, 10.0);
  EXPECT_EQ(Eval("MIN(b.price)", ctx), Value::Float(10));
  ctx.Slot(0, 30.0);
  EXPECT_EQ(Eval("SUM(b.volume)", ctx), Value::Int(30));
  EXPECT_EQ(Eval("AVG(b.volume)", ctx), Value::Float(15.0));
}

TEST(EvalTest, AggregatesOnEmptyKleeneAreNull) {
  FakeContext ctx(3);
  ctx.Slot(0, 0.0);
  EXPECT_TRUE(Eval("MIN(b.price)", ctx).is_null());
  EXPECT_TRUE(Eval("AVG(b.price)", ctx).is_null());
  EXPECT_EQ(Eval("COUNT(b)", ctx), Value::Int(0));
  EXPECT_TRUE(Eval("FIRST(b).price", ctx).is_null());
}

TEST(EvalTest, ScalarFunctions) {
  FakeContext ctx(3);
  EXPECT_EQ(Eval("ABS(-5)", ctx), Value::Int(5));
  EXPECT_EQ(Eval("ABS(-2.5)", ctx), Value::Float(2.5));
  EXPECT_EQ(Eval("SQRT(9)", ctx), Value::Float(3.0));
  EXPECT_TRUE(Eval("SQRT(-1)", ctx).is_null());
  EXPECT_TRUE(Eval("LOG(0)", ctx).is_null());
  EXPECT_EQ(Eval("EXP(0)", ctx), Value::Float(1.0));
  EXPECT_EQ(Eval("FLOOR(2.7)", ctx), Value::Int(2));
  EXPECT_EQ(Eval("CEIL(2.1)", ctx), Value::Int(3));
  EXPECT_EQ(Eval("ROUND(2.5)", ctx), Value::Int(3));
  EXPECT_EQ(Eval("LEAST(3, 7)", ctx), Value::Int(3));
  EXPECT_EQ(Eval("GREATEST(3.5, 7)", ctx), Value::Float(7.0));
  EXPECT_EQ(Eval("POW(2, 10)", ctx), Value::Float(1024.0));
}

// Builds `lhs op rhs` over int64 literals out of reach of the parser
// (INT64_MIN has no literal form) and evaluates it. Type checks the tree so
// result_type is set the same way parsed expressions get it.
Value EvalIntBinary(int64_t lhs, BinaryOp op, int64_t rhs) {
  auto layout = AbcLayout();
  auto e = Expr::Binary(op, Expr::Literal(Value::Int(lhs)),
                        Expr::Literal(Value::Int(rhs)));
  auto st = TypeCheck(e.get(), layout, ExprContext::kOutput);
  EXPECT_TRUE(st.ok()) << st.ToString();
  FakeContext ctx(3);
  auto v = Evaluate(*e, ctx);
  EXPECT_TRUE(v.ok()) << v.status().ToString();
  return v.ok() ? *v : Value::Bool(false);
}

constexpr int64_t kI64Min = std::numeric_limits<int64_t>::min();
constexpr int64_t kI64Max = std::numeric_limits<int64_t>::max();

// Regression: INT64_MIN % -1 used to execute a hardware divide whose
// quotient overflows (SIGFPE on x86, UB everywhere). The contract is now
// result 0, consistent with the mathematical remainder.
TEST(EvalTest, ModByMinusOneIsZeroEvenAtInt64Min) {
  EXPECT_EQ(EvalIntBinary(kI64Min, BinaryOp::kMod, -1), Value::Int(0));
  EXPECT_EQ(EvalIntBinary(5, BinaryOp::kMod, -1), Value::Int(0));
  EXPECT_EQ(EvalIntBinary(-7, BinaryOp::kMod, 3), Value::Int(-1));
  // INT64_MIN / -1 overflows too; division is double-typed so it stays
  // finite instead of trapping.
  EXPECT_EQ(EvalIntBinary(kI64Min, BinaryOp::kDiv, -1),
            Value::Float(9223372036854775808.0));
}

// Regression: int + - * used to round-trip through double (lossy beyond
// 2^53) and overflow silently. They are now native int64 with overflow
// mapped to NULL.
TEST(EvalTest, IntegerArithmeticIsExactAndOverflowYieldsNull) {
  const int64_t big = (int64_t{1} << 53) + 1;  // not representable as double
  EXPECT_EQ(EvalIntBinary(big, BinaryOp::kAdd, 0), Value::Int(big));
  EXPECT_EQ(EvalIntBinary(big, BinaryOp::kSub, 1),
            Value::Int(int64_t{1} << 53));
  EXPECT_EQ(EvalIntBinary(kI64Max, BinaryOp::kSub, kI64Max), Value::Int(0));
  EXPECT_EQ(EvalIntBinary(3037000499, BinaryOp::kMul, 3037000499),
            Value::Int(9223372030926249001));  // largest square below 2^63

  EXPECT_TRUE(EvalIntBinary(kI64Max, BinaryOp::kAdd, 1).is_null());
  EXPECT_TRUE(EvalIntBinary(kI64Min, BinaryOp::kSub, 1).is_null());
  EXPECT_TRUE(EvalIntBinary(kI64Min, BinaryOp::kAdd, -1).is_null());
  EXPECT_TRUE(EvalIntBinary(3037000500, BinaryOp::kMul, 3037000500).is_null());
  EXPECT_TRUE(EvalIntBinary(kI64Min, BinaryOp::kMul, -1).is_null());
}

TEST(EvalTest, IntegerComparisonsAreExact) {
  // (double)INT64_MAX == (double)(INT64_MAX - 1), so the old double-based
  // comparison path called these equal.
  EXPECT_EQ(EvalIntBinary(kI64Max, BinaryOp::kGt, kI64Max - 1),
            Value::Bool(true));
  EXPECT_EQ(EvalIntBinary(kI64Max - 1, BinaryOp::kLt, kI64Max),
            Value::Bool(true));
  EXPECT_EQ(EvalIntBinary(kI64Min, BinaryOp::kLe, kI64Min), Value::Bool(true));
  // Equality intentionally keeps the double-compare semantics of
  // Value::operator== (shared with hashing); it is not part of this fix.
}

TEST(EvalTest, NegationAndAbsOfInt64MinYieldNull) {
  auto layout = AbcLayout();
  FakeContext ctx(3);

  auto neg = Expr::Unary(UnaryOp::kNeg, Expr::Literal(Value::Int(kI64Min)));
  ASSERT_TRUE(TypeCheck(neg.get(), layout, ExprContext::kOutput).ok());
  auto v = Evaluate(*neg, ctx);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());

  std::vector<ExprPtr> args;
  args.push_back(Expr::Literal(Value::Int(kI64Min)));
  auto abs = Expr::Func(ScalarFunc::kAbs, std::move(args));
  ASSERT_TRUE(TypeCheck(abs.get(), layout, ExprContext::kOutput).ok());
  v = Evaluate(*abs, ctx);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
}

TEST(EvalTest, FloatToIntCastsGuardTheRepresentableRange) {
  FakeContext ctx(3);
  auto layout = AbcLayout();
  const auto eval_func = [&](ScalarFunc f, double x) {
    std::vector<ExprPtr> args;
    args.push_back(Expr::Literal(Value::Float(x)));
    auto e = Expr::Func(f, std::move(args));
    EXPECT_TRUE(TypeCheck(e.get(), layout, ExprContext::kOutput).ok());
    auto v = Evaluate(*e, ctx);
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    return v.ok() ? *v : Value::Bool(false);
  };

  EXPECT_TRUE(eval_func(ScalarFunc::kFloor, 1e300).is_null());
  EXPECT_TRUE(eval_func(ScalarFunc::kCeil, -1e300).is_null());
  EXPECT_TRUE(eval_func(ScalarFunc::kRound,
                        std::numeric_limits<double>::quiet_NaN())
                  .is_null());
  EXPECT_TRUE(eval_func(ScalarFunc::kRound,
                        std::numeric_limits<double>::infinity())
                  .is_null());
  // 2^63 is exactly the first unrepresentable value; one ULP below fits.
  EXPECT_TRUE(eval_func(ScalarFunc::kFloor, 9223372036854775808.0).is_null());
  EXPECT_EQ(eval_func(ScalarFunc::kFloor, 9223372036854774784.0),
            Value::Int(9223372036854774784));
  EXPECT_EQ(eval_func(ScalarFunc::kCeil, -9223372036854775808.0),
            Value::Int(kI64Min));

  // Int operands pass through the int-valued rounding functions unchanged.
  std::vector<ExprPtr> args;
  args.push_back(Expr::Literal(Value::Int(kI64Max)));
  auto e = Expr::Func(ScalarFunc::kRound, std::move(args));
  ASSERT_TRUE(TypeCheck(e.get(), layout, ExprContext::kOutput).ok());
  auto v = Evaluate(*e, ctx);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value::Int(kI64Max));
}

TEST(EvalTest, EvaluateScoreMapsNullToNegInfinity) {
  FakeContext ctx(3);
  auto layout = AbcLayout();
  auto e = ParseExpression("a.price * 2").value();
  ASSERT_TRUE(TypeCheck(e.get(), layout, ExprContext::kOutput).ok());
  // a unbound -> NULL -> -inf.
  EXPECT_EQ(EvaluateScore(*e, ctx), -std::numeric_limits<double>::infinity());
  ctx.Bind(0, Tick(1, 21));
  EXPECT_DOUBLE_EQ(EvaluateScore(*e, ctx), 42.0);
}

}  // namespace
}  // namespace cepr
