#include "expr/interval.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "expr/aggregate.h"
#include "expr/typecheck.h"
#include "lang/parser.h"
#include "testing/helpers.h"

namespace cepr {
namespace {

using testing::AbcLayout;
using testing::FakeContext;
using testing::Tick;

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(IntervalTest, Arithmetic) {
  const Interval a = Interval::Of(1, 3);
  const Interval b = Interval::Of(-2, 5);
  EXPECT_EQ((a + b).lo, -1);
  EXPECT_EQ((a + b).hi, 8);
  EXPECT_EQ((a - b).lo, -4);
  EXPECT_EQ((a - b).hi, 5);
  EXPECT_EQ((-a).lo, -3);
  EXPECT_EQ((-a).hi, -1);
}

TEST(IntervalTest, MultiplicationSignCases) {
  EXPECT_EQ((Interval::Of(2, 3) * Interval::Of(4, 5)).lo, 8);
  EXPECT_EQ((Interval::Of(2, 3) * Interval::Of(4, 5)).hi, 15);
  EXPECT_EQ((Interval::Of(-2, 3) * Interval::Of(-4, 5)).lo, -12);
  EXPECT_EQ((Interval::Of(-2, 3) * Interval::Of(-4, 5)).hi, 15);
  EXPECT_EQ((Interval::Of(-3, -2) * Interval::Of(-5, -4)).lo, 8);
}

TEST(IntervalTest, ZeroTimesInfinityIsZero) {
  const Interval r = Interval::Point(0) * Interval::Whole();
  EXPECT_EQ(r.lo, 0);
  EXPECT_EQ(r.hi, 0);
}

TEST(IntervalTest, DivisionAvoidingZero) {
  const Interval r = Interval::Of(10, 20) / Interval::Of(2, 4);
  EXPECT_EQ(r.lo, 2.5);
  EXPECT_EQ(r.hi, 10);
}

TEST(IntervalTest, DivisionThroughZeroIsWhole) {
  const Interval r = Interval::Of(10, 20) / Interval::Of(-1, 1);
  EXPECT_EQ(r.lo, -kInf);
  EXPECT_EQ(r.hi, kInf);
}

TEST(IntervalTest, HullMinMax) {
  const Interval a = Interval::Of(0, 2);
  const Interval b = Interval::Of(5, 7);
  EXPECT_EQ(Interval::Hull(a, b).lo, 0);
  EXPECT_EQ(Interval::Hull(a, b).hi, 7);
  EXPECT_EQ(Interval::Min(a, b).hi, 2);
  EXPECT_EQ(Interval::Max(a, b).lo, 5);
}

// Bound environment over SEQ(a, b+, c) / Stock with per-variable closedness.
class FakeBoundEnv : public BoundEnv {
 public:
  explicit FakeBoundEnv(const FakeContext* ctx) : ctx_(ctx) {}

  FakeBoundEnv& Close(int var) {
    closed_.push_back(var);
    return *this;
  }

  Interval AttrRange(int attr_index) const override {
    // Mirror the Stock schema ranges.
    if (attr_index == 1) return Interval::Of(1, 1000);   // price
    if (attr_index == 2) return Interval::Of(1, 10000);  // volume
    return Interval::Whole();
  }
  bool IsClosed(int var) const override {
    return std::find(closed_.begin(), closed_.end(), var) != closed_.end();
  }
  const EvalContext& Context() const override { return *ctx_; }

 private:
  const FakeContext* ctx_;
  std::vector<int> closed_;
};

ExprPtr Resolve(const std::string& text) {
  auto layout = AbcLayout();
  auto e = ParseExpression(text).value();
  auto st = TypeCheck(e.get(), layout, ExprContext::kOutput);
  EXPECT_TRUE(st.ok()) << st.ToString();
  std::vector<Expr*> exprs = {e.get()};
  AssignAggSlots(exprs);
  return e;
}

TEST(DeriveBoundsTest, LiteralIsPoint) {
  FakeContext ctx(3);
  FakeBoundEnv env(&ctx);
  const Interval r = DeriveBounds(*Resolve("42"), env);
  EXPECT_EQ(r.lo, 42);
  EXPECT_EQ(r.hi, 42);
}

TEST(DeriveBoundsTest, OpenVarRefUsesAttrRange) {
  FakeContext ctx(3);
  FakeBoundEnv env(&ctx);
  const Interval r = DeriveBounds(*Resolve("c.price"), env);
  EXPECT_EQ(r.lo, 1);
  EXPECT_EQ(r.hi, 1000);
}

TEST(DeriveBoundsTest, BoundVarRefIsPoint) {
  FakeContext ctx(3);
  ctx.Bind(0, Tick(1, 42.0));
  FakeBoundEnv env(&ctx);
  env.Close(0);
  const Interval r = DeriveBounds(*Resolve("a.price"), env);
  EXPECT_EQ(r.lo, 42);
  EXPECT_EQ(r.hi, 42);
}

TEST(DeriveBoundsTest, OpenMinOnlyDecreases) {
  FakeContext ctx(3);
  ctx.Bind(1, Tick(1, 50.0)).Slot(0, 50.0);  // running min = 50
  FakeBoundEnv env(&ctx);
  const Interval r = DeriveBounds(*Resolve("MIN(b.price)"), env);
  EXPECT_EQ(r.lo, 1);    // could fall to the range floor
  EXPECT_EQ(r.hi, 50);   // can never exceed the running min
}

TEST(DeriveBoundsTest, OpenMaxOnlyIncreases) {
  FakeContext ctx(3);
  ctx.Bind(1, Tick(1, 50.0)).Slot(0, 50.0);  // running max = 50
  FakeBoundEnv env(&ctx);
  const Interval r = DeriveBounds(*Resolve("MAX(b.price)"), env);
  EXPECT_EQ(r.lo, 50);
  EXPECT_EQ(r.hi, 1000);
}

TEST(DeriveBoundsTest, OpenSumOfPositiveAttributeUnboundedAbove) {
  FakeContext ctx(3);
  ctx.Bind(1, Tick(1, 50.0)).Slot(0, 50.0);
  FakeBoundEnv env(&ctx);
  const Interval r = DeriveBounds(*Resolve("SUM(b.price)"), env);
  EXPECT_EQ(r.lo, 50);  // price >= 1: sum can only grow
  EXPECT_EQ(r.hi, kInf);
}

TEST(DeriveBoundsTest, AvgStaysWithinRange) {
  FakeContext ctx(3);
  ctx.Bind(1, Tick(1, 50.0)).Slot(0, 50.0);
  FakeBoundEnv env(&ctx);
  const Interval r = DeriveBounds(*Resolve("AVG(b.price)"), env);
  EXPECT_GE(r.lo, 1);
  EXPECT_LE(r.hi, 1000);
}

TEST(DeriveBoundsTest, CountAtLeastCurrentOrOne) {
  FakeContext ctx(3);
  FakeBoundEnv env(&ctx);
  Interval r = DeriveBounds(*Resolve("COUNT(b)"), env);
  EXPECT_EQ(r.lo, 1);  // Kleene-plus: at least one iteration in a match
  EXPECT_EQ(r.hi, kInf);

  ctx.Bind(1, Tick(1, 1)).Bind(1, Tick(2, 2)).Bind(1, Tick(3, 3));
  r = DeriveBounds(*Resolve("COUNT(b)"), env);
  EXPECT_EQ(r.lo, 3);
}

TEST(DeriveBoundsTest, FirstFixedOnceBound) {
  FakeContext ctx(3);
  ctx.Bind(1, Tick(1, 70.0));
  FakeBoundEnv env(&ctx);
  const Interval r = DeriveBounds(*Resolve("FIRST(b).price"), env);
  EXPECT_EQ(r.lo, 70);
  EXPECT_EQ(r.hi, 70);
  // LAST can still be replaced by any in-range event.
  const Interval last = DeriveBounds(*Resolve("LAST(b).price"), env);
  EXPECT_EQ(last.lo, 1);
  EXPECT_EQ(last.hi, 1000);
}

TEST(DeriveBoundsTest, ClosedKleeneIsPoint) {
  FakeContext ctx(3);
  ctx.Bind(1, Tick(1, 30.0)).Bind(1, Tick(2, 20.0)).Slot(0, 20.0);
  FakeBoundEnv env(&ctx);
  env.Close(1);
  const Interval r = DeriveBounds(*Resolve("MIN(b.price)"), env);
  EXPECT_EQ(r.lo, 20);
  EXPECT_EQ(r.hi, 20);
}

TEST(DeriveBoundsTest, VShapeScoreBound) {
  // The quickstart score: (a.price - MIN(b.price)) / a.price with a bound
  // and b partially accumulated.
  FakeContext ctx(3);
  ctx.Bind(0, Tick(1, 100.0));
  ctx.Bind(1, Tick(2, 90.0)).Slot(0, 90.0);
  FakeBoundEnv env(&ctx);
  env.Close(0);
  const Interval r =
      DeriveBounds(*Resolve("(a.price - MIN(b.price)) / a.price"), env);
  // Best case: min falls to 1 -> (100-1)/100; worst: stays 90 -> 0.1.
  EXPECT_NEAR(r.lo, 0.1, 1e-9);
  EXPECT_NEAR(r.hi, 0.99, 1e-9);
}

TEST(DeriveBoundsTest, DefiniteComparisonsCollapse) {
  FakeContext ctx(3);
  FakeBoundEnv env(&ctx);
  // price in [1,1000]: price > 0 definitely true, price < 0 definitely false.
  Interval r = DeriveBounds(*Resolve("c.price > 0"), env);
  EXPECT_EQ(r.lo, 1);
  EXPECT_EQ(r.hi, 1);
  r = DeriveBounds(*Resolve("c.price < 0"), env);
  EXPECT_EQ(r.lo, 0);
  EXPECT_EQ(r.hi, 0);
  r = DeriveBounds(*Resolve("c.price > 500"), env);
  EXPECT_EQ(r.lo, 0);
  EXPECT_EQ(r.hi, 1);
}

TEST(DeriveBoundsTest, FunctionsMonotone) {
  FakeContext ctx(3);
  FakeBoundEnv env(&ctx);
  Interval r = DeriveBounds(*Resolve("SQRT(c.price)"), env);
  EXPECT_NEAR(r.lo, 1.0, 1e-9);
  EXPECT_NEAR(r.hi, std::sqrt(1000.0), 1e-9);
  // c.price - 500 spans [-499, 500], so the absolute value peaks at 500.
  r = DeriveBounds(*Resolve("ABS(c.price - 500)"), env);
  EXPECT_EQ(r.lo, 0);
  EXPECT_EQ(r.hi, 500);
}

// Soundness property: for random partial states and random completions, the
// final score always lies inside the derived interval.
TEST(DeriveBoundsTest, SoundnessOnRandomCompletions) {
  Random rng(2024);
  const ExprPtr score = Resolve("(a.price - MIN(b.price)) / a.price + COUNT(b)");
  for (int trial = 0; trial < 200; ++trial) {
    FakeContext partial(3);
    const double a_price = rng.UniformDouble(1, 1000);
    partial.Bind(0, Tick(0, a_price));
    double running_min = kInf;
    const int existing = static_cast<int>(rng.Uniform(4));
    for (int i = 0; i < existing; ++i) {
      const double p = rng.UniformDouble(1, 1000);
      running_min = std::min(running_min, p);
      partial.Bind(1, Tick(i + 1, p));
    }
    if (existing > 0) partial.Slot(0, running_min);
    FakeBoundEnv env(&partial);
    env.Close(0);
    const Interval bound = DeriveBounds(*score, env);

    // Complete with 1..3 more b events and evaluate the true score.
    FakeContext complete(3);
    complete.Bind(0, Tick(0, a_price));
    double final_min = running_min;
    int total = existing;
    for (int i = 0; i < existing; ++i) complete.Bind(1, Tick(i + 1, 500));
    const int extra = 1 + static_cast<int>(rng.Uniform(3));
    for (int i = 0; i < extra; ++i) {
      const double p = rng.UniformDouble(1, 1000);
      final_min = std::min(final_min, p);
      complete.Bind(1, Tick(100 + i, p));
      ++total;
    }
    complete.Slot(0, final_min);
    const double actual =
        (a_price - final_min) / a_price + static_cast<double>(total);
    EXPECT_GE(actual, bound.lo - 1e-9) << "trial " << trial;
    EXPECT_LE(actual, bound.hi + 1e-9) << "trial " << trial;
  }
}

}  // namespace
}  // namespace cepr
