#include "expr/fold.h"

#include <gtest/gtest.h>

#include "engine/matcher.h"
#include "expr/typecheck.h"
#include "lang/parser.h"
#include "plan/compiler.h"
#include "testing/helpers.h"

namespace cepr {
namespace {

using testing::AbcLayout;
using testing::StockSchema;

// Parses, resolves and folds an expression; returns its rendered form.
std::string Fold(const std::string& text,
                 ExprContext context = ExprContext::kOutput) {
  auto layout = AbcLayout();
  auto e = ParseExpression(text).value();
  auto st = TypeCheck(e.get(), layout, context);
  EXPECT_TRUE(st.ok()) << text << ": " << st.ToString();
  return FoldConstants(std::move(e))->ToString();
}

TEST(FoldTest, ArithmeticCollapses) {
  EXPECT_EQ(Fold("2 * 3 + 1"), "7");
  EXPECT_EQ(Fold("10 / 4"), "2.5");
  EXPECT_EQ(Fold("-(3 - 5)"), "2");
  EXPECT_EQ(Fold("POW(2, 10)"), "1024.0");
  EXPECT_EQ(Fold("UPPER('ibm')"), "'IBM'");
  EXPECT_EQ(Fold("LENGTH(CONCAT('ab', 'c'))"), "3");
}

TEST(FoldTest, ComparisonsCollapse) {
  EXPECT_EQ(Fold("1 > 2", ExprContext::kPredicate), "FALSE");
  EXPECT_EQ(Fold("'a' < 'b'", ExprContext::kPredicate), "TRUE");
}

TEST(FoldTest, RuntimeSemanticsPreserved) {
  // Folding uses the runtime evaluator: 1/0 folds to NULL, not an error.
  EXPECT_EQ(Fold("1 / 0"), "NULL");
  EXPECT_EQ(Fold("SQRT(-1)"), "NULL");
}

TEST(FoldTest, ReferencesBlockFolding) {
  EXPECT_EQ(Fold("a.price + 1"), "(a.price + 1)");
  // But constant subtrees under references still fold.
  EXPECT_EQ(Fold("a.price + 2 * 3"), "(a.price + 6)");
  EXPECT_EQ(Fold("MIN(b.price) * (1 + 1)"), "(MIN(b.price) * 2)");
}

TEST(FoldTest, BooleanIdentities) {
  EXPECT_EQ(Fold("TRUE AND a.price > 1", ExprContext::kPredicate),
            "(a.price > 1)");
  EXPECT_EQ(Fold("a.price > 1 AND FALSE", ExprContext::kPredicate), "FALSE");
  EXPECT_EQ(Fold("FALSE OR a.price > 1", ExprContext::kPredicate),
            "(a.price > 1)");
  EXPECT_EQ(Fold("a.price > 1 OR TRUE", ExprContext::kPredicate), "TRUE");
  EXPECT_EQ(Fold("NOT (1 > 2)", ExprContext::kPredicate), "TRUE");
}

TEST(FoldTest, NestedIdentitiesCascade) {
  EXPECT_EQ(Fold("(1 < 2 AND a.price > 1) OR (2 < 1)",
                 ExprContext::kPredicate),
            "(a.price > 1)");
}

TEST(FoldTest, CaseArmsPrune) {
  // FALSE arms disappear; a leading TRUE arm collapses the whole CASE.
  EXPECT_EQ(Fold("CASE WHEN 1 > 2 THEN 10 WHEN a.price > 1 THEN 20 "
                 "ELSE 30 END"),
            "CASE WHEN (a.price > 1) THEN 20 ELSE 30 END");
  EXPECT_EQ(Fold("CASE WHEN 1 < 2 THEN 10 WHEN a.price > 1 THEN 20 END"),
            "10");
  EXPECT_EQ(Fold("CASE WHEN 1 > 2 THEN 10 ELSE 30 END"), "30");
  EXPECT_EQ(Fold("CASE WHEN 1 > 2 THEN 10 END"), "NULL");
}

TEST(FoldTest, CompilerAppliesFolding) {
  // A constant-true conjunct vanishes from the compiled predicate sets; the
  // remaining conjunct is pre-simplified.
  auto plan = CompileQueryText(
                  "SELECT a.price FROM Stock MATCH PATTERN SEQ(a, c) "
                  "WHERE 1 < 2 AND a.price > 2 * 5 AND c.price > a.price",
                  StockSchema())
                  .value();
  // Folding happens before decomposition: the TRUE conjunct is absorbed by
  // the AND identity, leaving one pre-simplified predicate per component.
  const auto& comp0 = plan->pattern.components[0];
  ASSERT_EQ(comp0.begin_preds.size(), 1u);
  EXPECT_EQ(comp0.begin_preds[0]->ToString(), "(a.price > 10)");
  ASSERT_EQ(plan->pattern.components[1].begin_preds.size(), 1u);
}

TEST(FoldTest, ConstantFalseWhereYieldsNoMatches) {
  // Degenerate but legal: the folded FALSE start-gate blocks every run.
  auto plan = CompileQueryText(
                  "SELECT a.price FROM Stock MATCH PATTERN SEQ(a) "
                  "WHERE a.price > 0 AND 1 > 2",
                  StockSchema())
                  .value();
  ::cepr::AtomicMatcherStats stats;
  uint64_t ids = 0;
  ::cepr::Matcher matcher(plan, ::cepr::MatcherOptions{}, nullptr, &stats, &ids);
  std::vector<Match> out;
  matcher.OnEvent(std::make_shared<const Event>(testing::Tick(0, 50)), &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.runs_created.Load(), 0u);
}

}  // namespace
}  // namespace cepr
