// Differential fuzz test: the bytecode VM must be bit-identical to the AST
// evaluator — same value for every OK evaluation, NULL where the other is
// NULL, and an error status with the same code where the other errors. This
// is the property that lets `bytecode_eval` flip freely without changing
// ranked output (docs/ARCHITECTURE.md, "Predicate bytecode").
//
// We generate random type-correct expression trees over the SEQ(a, b+, c)
// Stock layout, seed the leaves with adversarial constants (NULL, NaN,
// +/-inf, +/-0.0, INT64_MIN/MAX, 2^53 neighbours, empty strings), run both
// evaluators against several binding contexts (unbound, partial, full,
// extreme attribute values) and compare value-for-value / status-for-status.
// Hand-built malformed trees cover the error paths the type checker would
// normally reject.

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "expr/aggregate.h"
#include "expr/bytecode.h"
#include "expr/eval.h"
#include "expr/typecheck.h"
#include "expr/vm.h"
#include "testing/helpers.h"

namespace cepr {
namespace {

using testing::AbcLayout;
using testing::FakeContext;
using testing::StockSchema;
using testing::Tick;

constexpr int64_t kI64Min = std::numeric_limits<int64_t>::min();
constexpr int64_t kI64Max = std::numeric_limits<int64_t>::max();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// Loose generation types: INT and FLOAT mix freely in numeric positions.
enum class GenType { kNum, kBool, kStr };

/// Generates random, mostly type-correct expression trees. "Mostly": a rare
/// NULL literal can land anywhere, and numeric productions mix INT/FLOAT, so
/// a small fraction of trees fail TypeCheck and are skipped (counted, with a
/// floor asserted so the generator cannot silently degenerate).
class TreeGen {
 public:
  TreeGen(std::mt19937_64* rng, bool allow_iter)
      : rng_(rng), allow_iter_(allow_iter) {}

  ExprPtr Gen(GenType t, int depth) {
    if (depth <= 0 || Pick(5) == 0) return Leaf(t);
    switch (t) {
      case GenType::kNum:
        return Num(depth);
      case GenType::kBool:
        return Bool(depth);
      case GenType::kStr:
        return Str(depth);
    }
    return Leaf(t);
  }

 private:
  int Pick(int n) {
    return std::uniform_int_distribution<int>(0, n - 1)(*rng_);
  }

  ExprPtr Leaf(GenType t) {
    if (Pick(10) == 0) return Expr::Literal(Value::Null());
    switch (t) {
      case GenType::kNum:
        return Pick(2) == 0 ? IntLeaf() : FloatLeaf();
      case GenType::kBool:
        return Expr::Literal(Value::Bool(Pick(2) == 0));
      case GenType::kStr:
        return StrLeaf();
    }
    return Expr::Literal(Value::Null());
  }

  ExprPtr IntLeaf() {
    static const int64_t kPool[] = {0,       1,  -1, 2, 42, kI64Min, kI64Max,
                                    kI64Max - 1, (int64_t{1} << 53) + 1,
                                    -(int64_t{1} << 53) - 1, 10000};
    switch (Pick(6)) {
      case 0:
        return Expr::Literal(Value::Int(kPool[Pick(11)]));
      case 1:
        return Expr::VarRef(Pick(2) == 0 ? "a" : "c", "volume");
      case 2:
        return Expr::VarRef(Pick(2) == 0 ? "a" : "c", "ts");
      case 3:
        return Expr::Aggregate(AggFunc::kCount, "b", "");
      case 4:
        return Expr::Aggregate(Pick(2) == 0 ? AggFunc::kSum : AggFunc::kFirst,
                               "b", "volume");
      default:
        if (allow_iter_) {
          return Expr::IterRef("b", "volume", RandomIter());
        }
        return Expr::Aggregate(AggFunc::kLast, "b", "volume");
    }
  }

  ExprPtr FloatLeaf() {
    static const double kPool[] = {0.0,  -0.0, 1.5,  -2.25, 0.1,   kNan,
                                   kInf, -kInf, 1e300, -1e300, 999.5};
    switch (Pick(5)) {
      case 0:
      case 1:
        return Expr::Literal(Value::Float(kPool[Pick(11)]));
      case 2:
        return Expr::VarRef(Pick(2) == 0 ? "a" : "c", "price");
      case 3: {
        static const AggFunc kAggs[] = {AggFunc::kMin, AggFunc::kMax,
                                        AggFunc::kAvg, AggFunc::kSum};
        return Expr::Aggregate(kAggs[Pick(4)], "b", "price");
      }
      default:
        if (allow_iter_) return Expr::IterRef("b", "price", RandomIter());
        return Expr::Aggregate(AggFunc::kFirst, "b", "price");
    }
  }

  ExprPtr StrLeaf() {
    static const char* kPool[] = {"", "a", "IBM", "hello world", "S0"};
    switch (Pick(3)) {
      case 0:
        return Expr::Literal(Value::String(kPool[Pick(5)]));
      case 1:
        return Expr::VarRef(Pick(2) == 0 ? "a" : "c", "symbol");
      default:
        if (allow_iter_) return Expr::IterRef("b", "symbol", RandomIter());
        return Expr::Aggregate(AggFunc::kLast, "b", "symbol");
    }
  }

  IterKind RandomIter() {
    static const IterKind kKinds[] = {IterKind::kCurrent, IterKind::kPrev,
                                      IterKind::kFirst};
    return kKinds[Pick(3)];
  }

  ExprPtr Num(int depth) {
    switch (Pick(8)) {
      case 0: {
        static const BinaryOp kOps[] = {BinaryOp::kAdd, BinaryOp::kSub,
                                        BinaryOp::kMul, BinaryOp::kDiv};
        return Expr::Binary(kOps[Pick(4)], Gen(GenType::kNum, depth - 1),
                            Gen(GenType::kNum, depth - 1));
      }
      case 1:
        // % is INT-only; int-yielding subtrees keep the accept rate up.
        return Expr::Binary(BinaryOp::kMod, IntLeaf(), IntLeaf());
      case 2:
        return Expr::Unary(UnaryOp::kNeg, Gen(GenType::kNum, depth - 1));
      case 3: {
        static const ScalarFunc kOne[] = {ScalarFunc::kAbs, ScalarFunc::kSqrt,
                                          ScalarFunc::kLog, ScalarFunc::kExp,
                                          ScalarFunc::kFloor, ScalarFunc::kCeil,
                                          ScalarFunc::kRound};
        std::vector<ExprPtr> args;
        args.push_back(Gen(GenType::kNum, depth - 1));
        return Expr::Func(kOne[Pick(7)], std::move(args));
      }
      case 4: {
        static const ScalarFunc kTwo[] = {ScalarFunc::kPow, ScalarFunc::kLeast,
                                          ScalarFunc::kGreatest};
        std::vector<ExprPtr> args;
        args.push_back(Gen(GenType::kNum, depth - 1));
        args.push_back(Gen(GenType::kNum, depth - 1));
        return Expr::Func(kTwo[Pick(3)], std::move(args));
      }
      case 5: {
        std::vector<ExprPtr> args;
        args.push_back(Gen(GenType::kStr, depth - 1));
        return Expr::Func(ScalarFunc::kLength, std::move(args));
      }
      case 6:
        return Case(GenType::kNum, depth);
      default:
        return Leaf(GenType::kNum);
    }
  }

  ExprPtr Bool(int depth) {
    switch (Pick(6)) {
      case 0:
      case 1: {
        static const BinaryOp kCmp[] = {BinaryOp::kLt, BinaryOp::kLe,
                                        BinaryOp::kGt, BinaryOp::kGe,
                                        BinaryOp::kEq, BinaryOp::kNe};
        const GenType operand = Pick(4) == 0 ? GenType::kStr : GenType::kNum;
        return Expr::Binary(kCmp[Pick(6)], Gen(operand, depth - 1),
                            Gen(operand, depth - 1));
      }
      case 2:
        return Expr::Binary(Pick(2) == 0 ? BinaryOp::kAnd : BinaryOp::kOr,
                            Gen(GenType::kBool, depth - 1),
                            Gen(GenType::kBool, depth - 1));
      case 3:
        return Expr::Unary(UnaryOp::kNot, Gen(GenType::kBool, depth - 1));
      case 4:
        return Case(GenType::kBool, depth);
      default:
        return Leaf(GenType::kBool);
    }
  }

  ExprPtr Str(int depth) {
    switch (Pick(5)) {
      case 0: {
        std::vector<ExprPtr> args;
        args.push_back(Gen(GenType::kStr, depth - 1));
        return Expr::Func(Pick(2) == 0 ? ScalarFunc::kUpper : ScalarFunc::kLower,
                          std::move(args));
      }
      case 1: {
        std::vector<ExprPtr> args;
        const int n = 1 + Pick(3);
        for (int i = 0; i < n; ++i) {
          args.push_back(Gen(GenType::kStr, depth - 1));
        }
        return Expr::Func(ScalarFunc::kConcat, std::move(args));
      }
      case 2: {
        std::vector<ExprPtr> args;
        args.push_back(Gen(GenType::kStr, depth - 1));
        args.push_back(Gen(GenType::kNum, depth - 1));
        args.push_back(Gen(GenType::kNum, depth - 1));
        return Expr::Func(ScalarFunc::kSubstr, std::move(args));
      }
      case 3:
        return Case(GenType::kStr, depth);
      default:
        return Leaf(GenType::kStr);
    }
  }

  ExprPtr Case(GenType t, int depth) {
    std::vector<ExprPtr> children;
    const int pairs = 1 + Pick(2);
    for (int i = 0; i < pairs; ++i) {
      children.push_back(Gen(GenType::kBool, depth - 1));
      children.push_back(Gen(t, depth - 1));
    }
    const bool has_else = Pick(2) == 0;
    if (has_else) children.push_back(Gen(t, depth - 1));
    return Expr::Case(std::move(children), has_else);
  }

  std::mt19937_64* rng_;
  bool allow_iter_;
};

/// Bit-identity for values: same type, and for floats the same bit pattern
/// (distinguishing -0.0 from 0.0) with all NaNs considered equal.
bool BitIdentical(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case ValueType::kNull:
      return true;
    case ValueType::kBool:
      return a.AsBool() == b.AsBool();
    case ValueType::kInt:
      return a.AsInt() == b.AsInt();
    case ValueType::kFloat: {
      const double x = a.AsFloat();
      const double y = b.AsFloat();
      if (std::isnan(x) || std::isnan(y)) return std::isnan(x) && std::isnan(y);
      return std::memcmp(&x, &y, sizeof(double)) == 0;
    }
    case ValueType::kString:
      return a.AsString() == b.AsString();
  }
  return false;
}

struct Contexts {
  Contexts() {
    for (auto* c : {&empty, &partial, &full, &extreme}) {
      // AggValue slots: preset adversarial doubles for however many slots the
      // tree's aggregates get assigned.
      static const double kSlots[] = {0.0, 1.5, -kInf, kInf, kNan,
                                      1e300, -2.5, 9.75};
      for (int i = 0; i < 32; ++i) c->Slot(i, kSlots[i % 8]);
    }
    partial.Bind(0, Tick(1, 10.5, 100, "IBM"));

    full.Bind(0, Tick(1, 10.5, 100, "IBM"));
    full.Bind(1, Tick(2, 11.0, 200, "IBM"));
    full.Bind(1, Tick(3, 12.5, 300, ""));
    full.Bind(2, Tick(4, 9.0, 400, "MSFT"));
    full.Candidate(1, &candidate_plain);

    extreme.Bind(0, Tick(10, kNan, kI64Max, ""));
    extreme.Bind(1, Tick(11, -0.0, kI64Min, "hello world"));
    extreme.Bind(2, Tick(12, kInf, 0, "a"));
    extreme.Candidate(1, &candidate_extreme);
  }

  Event candidate_plain = Tick(5, 10.75, 150, "IBM");
  Event candidate_extreme = Tick(13, -kInf, -1, "");
  FakeContext empty{3};
  FakeContext partial{3};
  FakeContext full{3};
  FakeContext extreme{3};
};

/// Evaluates `expr` with both evaluators against `ctx` and asserts
/// equivalence of Evaluate/VmEvaluate, EvaluatePredicate/VmEvaluatePredicate
/// (bool roots) and EvaluateScore/VmEvaluateScore (numeric roots).
void CheckEquivalent(const Expr& expr, const BytecodeProgram& prog,
                     const EvalContext& ctx, VmState* vm, const char* which) {
  const Result<Value> ast = Evaluate(expr, ctx);
  const Result<Value> bc = VmEvaluate(prog, ctx, vm);
  ASSERT_EQ(ast.ok(), bc.ok())
      << which << ": status mismatch for " << expr.ToString() << "\n  ast: "
      << ast.status().ToString() << "\n  vm:  " << bc.status().ToString();
  if (!ast.ok()) {
    EXPECT_EQ(ast.status().code(), bc.status().code()) << expr.ToString();
  } else {
    EXPECT_TRUE(BitIdentical(*ast, *bc))
        << which << ": value mismatch for " << expr.ToString()
        << "\n  ast: " << ast->ToString() << "\n  vm:  " << bc->ToString();
  }

  if (expr.result_type == ValueType::kBool) {
    const Result<bool> ap = EvaluatePredicate(expr, ctx);
    const Result<bool> bp = VmEvaluatePredicate(prog, ctx, vm);
    ASSERT_EQ(ap.ok(), bp.ok()) << expr.ToString();
    if (ap.ok()) {
      EXPECT_EQ(*ap, *bp) << expr.ToString();
    } else {
      EXPECT_EQ(ap.status().code(), bp.status().code()) << expr.ToString();
    }
  }
  if (expr.result_type == ValueType::kInt ||
      expr.result_type == ValueType::kFloat) {
    const double as = EvaluateScore(expr, ctx);
    const double bs = VmEvaluateScore(prog, ctx, vm);
    if (std::isnan(as) || std::isnan(bs)) {
      EXPECT_TRUE(std::isnan(as) && std::isnan(bs)) << expr.ToString();
    } else {
      EXPECT_EQ(as, bs) << expr.ToString();
    }
  }
}

void RunFuzz(uint64_t seed, GenType root, ExprContext tc_context,
             bool allow_iter, int iterations) {
  std::mt19937_64 rng(seed);
  TreeGen gen(&rng, allow_iter);
  const BindingLayout layout = AbcLayout();
  Contexts ctxs;
  VmState vm;

  int accepted = 0;
  for (int i = 0; i < iterations; ++i) {
    ExprPtr e = gen.Gen(root, 4);
    if (!TypeCheck(e.get(), layout, tc_context).ok()) continue;
    std::vector<Expr*> roots = {e.get()};
    AssignAggSlots(roots);

    auto prog = CompileToBytecode(*e);
    ASSERT_TRUE(prog.ok()) << "compile failed: " << e->ToString() << " — "
                           << prog.status().ToString();
    ++accepted;

    CheckEquivalent(*e, *prog, ctxs.empty, &vm, "empty");
    CheckEquivalent(*e, *prog, ctxs.partial, &vm, "partial");
    CheckEquivalent(*e, *prog, ctxs.full, &vm, "full");
    CheckEquivalent(*e, *prog, ctxs.extreme, &vm, "extreme");
    if (::testing::Test::HasFatalFailure()) {
      ADD_FAILURE() << "first divergence at iteration " << i;
      return;
    }
  }
  // The generator mixes INT/FLOAT loosely and sprinkles NULL literals, so
  // some trees fail TypeCheck — but most must survive or the fuzz is hollow.
  EXPECT_GE(accepted, iterations / 2) << "generator accept rate collapsed";
}

TEST(BytecodeEquivalence, FuzzPredicates) {
  RunFuzz(/*seed=*/0xCE9B1u, GenType::kBool, ExprContext::kPredicate,
          /*allow_iter=*/true, /*iterations=*/400);
}

TEST(BytecodeEquivalence, FuzzNumericOutputs) {
  RunFuzz(/*seed=*/0x5EED2u, GenType::kNum, ExprContext::kOutput,
          /*allow_iter=*/false, /*iterations=*/400);
}

TEST(BytecodeEquivalence, FuzzStringOutputs) {
  RunFuzz(/*seed=*/0x5EED3u, GenType::kStr, ExprContext::kOutput,
          /*allow_iter=*/false, /*iterations=*/300);
}

// The type checker rejects ill-typed trees, but the evaluators still carry
// runtime type guards (events could in principle disagree with the schema).
// Both evaluators must fail with the same status code on the same trees.
TEST(BytecodeEquivalence, MalformedTreesErrorIdentically) {
  Contexts ctxs;
  VmState vm;

  std::vector<ExprPtr> trees;
  // AND over a non-bool operand: the lhs/rhs bool checks happen at runtime.
  trees.push_back(Expr::Binary(BinaryOp::kAnd, Expr::Literal(Value::Int(1)),
                               Expr::Literal(Value::Bool(false))));
  trees.push_back(Expr::Binary(BinaryOp::kOr, Expr::Literal(Value::Bool(false)),
                               Expr::Literal(Value::String("x"))));
  // Arithmetic / comparison on mismatched runtime types.
  trees.push_back(Expr::Binary(BinaryOp::kAdd, Expr::Literal(Value::Int(1)),
                               Expr::Literal(Value::String("x"))));
  trees.push_back(Expr::Binary(BinaryOp::kLt, Expr::Literal(Value::Bool(true)),
                               Expr::Literal(Value::Int(0))));
  trees.push_back(Expr::Binary(BinaryOp::kMod, Expr::Literal(Value::Float(1.5)),
                               Expr::Literal(Value::Int(2))));
  trees.push_back(
      Expr::Unary(UnaryOp::kNot, Expr::Literal(Value::Int(3))));
  trees.push_back(
      Expr::Unary(UnaryOp::kNeg, Expr::Literal(Value::String("x"))));
  {
    std::vector<ExprPtr> args;
    args.push_back(Expr::Literal(Value::String("x")));
    trees.push_back(Expr::Func(ScalarFunc::kAbs, std::move(args)));
  }

  // Note: not every tree errors — e.g. `1 AND FALSE` short-circuits on the
  // FALSE rhs before the lhs bool check fires, in both evaluators. The
  // property under test is only that the two evaluators agree.
  int errored = 0;
  for (const ExprPtr& e : trees) {
    // Deliberately skip TypeCheck; set a plausible static type by hand.
    e->result_type = ValueType::kBool;
    auto prog = CompileToBytecode(*e);
    ASSERT_TRUE(prog.ok()) << e->ToString();
    const Result<Value> ast = Evaluate(*e, ctxs.full);
    const Result<Value> bc = VmEvaluate(*prog, ctxs.full, &vm);
    ASSERT_EQ(ast.ok(), bc.ok()) << e->ToString();
    if (!ast.ok()) {
      ++errored;
      EXPECT_EQ(ast.status().code(), bc.status().code()) << e->ToString();
    } else {
      EXPECT_TRUE(BitIdentical(*ast, *bc)) << e->ToString();
    }

    const Result<bool> ap = EvaluatePredicate(*e, ctxs.full);
    const Result<bool> bp = VmEvaluatePredicate(*prog, ctxs.full, &vm);
    ASSERT_EQ(ap.ok(), bp.ok()) << e->ToString();
    if (!ap.ok()) {
      EXPECT_EQ(ap.status().code(), bp.status().code()) << e->ToString();
    } else {
      EXPECT_EQ(*ap, *bp) << e->ToString();
    }
  }
  EXPECT_GE(errored, 5);

  // A non-bool root makes EvaluatePredicate itself error identically.
  ExprPtr num = Expr::Literal(Value::Int(7));
  num->result_type = ValueType::kInt;
  auto prog = CompileToBytecode(*num);
  ASSERT_TRUE(prog.ok());
  const Result<bool> ap = EvaluatePredicate(*num, ctxs.empty);
  const Result<bool> bp = VmEvaluatePredicate(*prog, ctxs.empty, &vm);
  ASSERT_FALSE(ap.ok());
  ASSERT_FALSE(bp.ok());
  EXPECT_EQ(ap.status().code(), bp.status().code());
}

// Directed cases for the trickiest mirrored semantics, checked across every
// context so NULL paths and extreme payloads are both exercised.
TEST(BytecodeEquivalence, DirectedArithmeticAndPromotionCases) {
  const BindingLayout layout = AbcLayout();
  Contexts ctxs;
  VmState vm;

  const auto check = [&](ExprPtr e) {
    ASSERT_TRUE(TypeCheck(e.get(), layout, ExprContext::kOutput).ok())
        << e->ToString();
    std::vector<Expr*> roots = {e.get()};
    AssignAggSlots(roots);
    auto prog = CompileToBytecode(*e);
    ASSERT_TRUE(prog.ok()) << e->ToString();
    CheckEquivalent(*e, *prog, ctxs.empty, &vm, "empty");
    CheckEquivalent(*e, *prog, ctxs.full, &vm, "full");
    CheckEquivalent(*e, *prog, ctxs.extreme, &vm, "extreme");
  };

  // Overflow-to-NULL and the % -1 guard.
  check(Expr::Binary(BinaryOp::kAdd, Expr::Literal(Value::Int(kI64Max)),
                     Expr::Literal(Value::Int(1))));
  check(Expr::Binary(BinaryOp::kMul, Expr::Literal(Value::Int(kI64Min)),
                     Expr::Literal(Value::Int(-1))));
  check(Expr::Binary(BinaryOp::kMod, Expr::Literal(Value::Int(kI64Min)),
                     Expr::Literal(Value::Int(-1))));
  check(Expr::Unary(UnaryOp::kNeg, Expr::Literal(Value::Int(kI64Min))));

  // CASE INT->FLOAT promotion (WHEN branch and ELSE branch).
  {
    std::vector<ExprPtr> kids;
    kids.push_back(Expr::Binary(BinaryOp::kGt, Expr::VarRef("a", "price"),
                                Expr::Literal(Value::Float(10.0))));
    kids.push_back(Expr::Literal(Value::Int((int64_t{1} << 53) + 1)));
    kids.push_back(Expr::Literal(Value::Float(0.5)));  // ELSE
    check(Expr::Case(std::move(kids), /*has_else=*/true));
  }

  // Value::operator== double-compare for INT equality is intentionally
  // preserved: INT64_MAX = INT64_MAX-1 is TRUE in both evaluators.
  check(Expr::Binary(BinaryOp::kEq, Expr::Literal(Value::Int(kI64Max)),
                     Expr::Literal(Value::Int(kI64Max - 1))));
  // ...but ordering comparisons are exact in both.
  check(Expr::Binary(BinaryOp::kGt, Expr::Literal(Value::Int(kI64Max)),
                     Expr::Literal(Value::Int(kI64Max - 1))));

  // NULL = NULL is TRUE, NULL = x is NULL; NULL <> NULL is FALSE.
  check(Expr::Binary(BinaryOp::kEq, Expr::Literal(Value::Null()),
                     Expr::Literal(Value::Null())));
  check(Expr::Binary(BinaryOp::kNe, Expr::Literal(Value::Null()),
                     Expr::Literal(Value::Null())));
  check(Expr::Binary(BinaryOp::kEq, Expr::Literal(Value::Null()),
                     Expr::Literal(Value::Int(3))));

  // Float->int casts at the representability boundary.
  {
    std::vector<ExprPtr> args;
    args.push_back(Expr::Literal(Value::Float(9223372036854775808.0)));
    check(Expr::Func(ScalarFunc::kFloor, std::move(args)));
  }
  {
    std::vector<ExprPtr> args;
    args.push_back(Expr::Literal(Value::Float(-9223372036854775808.0)));
    check(Expr::Func(ScalarFunc::kCeil, std::move(args)));
  }
  {
    std::vector<ExprPtr> args;
    args.push_back(Expr::Literal(Value::Float(kNan)));
    check(Expr::Func(ScalarFunc::kRound, std::move(args)));
  }

  // SUBSTR evaluates all three children before the NULL check; CONCAT
  // short-circuits per child.
  {
    std::vector<ExprPtr> args;
    args.push_back(Expr::Literal(Value::String("hello world")));
    args.push_back(Expr::Literal(Value::Int(-3)));
    args.push_back(Expr::Literal(Value::Int(7)));
    check(Expr::Func(ScalarFunc::kSubstr, std::move(args)));
  }
  {
    std::vector<ExprPtr> args;
    args.push_back(Expr::Literal(Value::String("x")));
    args.push_back(Expr::VarRef("a", "symbol"));  // NULL in the empty ctx
    args.push_back(Expr::Literal(Value::String("y")));
    check(Expr::Func(ScalarFunc::kConcat, std::move(args)));
  }
}

}  // namespace
}  // namespace cepr
