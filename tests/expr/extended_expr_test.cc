// Tests for CASE WHEN, BETWEEN, IN, and the string functions.

#include <gtest/gtest.h>

#include "expr/aggregate.h"
#include "expr/eval.h"
#include "expr/typecheck.h"
#include "lang/parser.h"
#include "plan/compiler.h"
#include "testing/helpers.h"

namespace cepr {
namespace {

using testing::AbcLayout;
using testing::FakeContext;
using testing::Tick;

Value Eval(const std::string& text, const FakeContext& ctx,
           ExprContext context = ExprContext::kOutput) {
  auto layout = AbcLayout();
  auto e = ParseExpression(text);
  EXPECT_TRUE(e.ok()) << e.status().ToString();
  if (!e.ok()) return Value::Null();
  auto st = TypeCheck(e->get(), layout, context);
  EXPECT_TRUE(st.ok()) << text << ": " << st.ToString();
  if (!st.ok()) return Value::Null();
  std::vector<Expr*> exprs = {e->get()};
  AssignAggSlots(exprs);
  auto v = Evaluate(**e, ctx);
  EXPECT_TRUE(v.ok()) << v.status().ToString();
  return v.ok() ? *v : Value::Null();
}

// -- BETWEEN / IN (desugared at parse time) ----------------------------------

TEST(BetweenTest, DesugarsToRangeCheck) {
  auto e = ParseExpression("a.price BETWEEN 10 AND 20").value();
  EXPECT_EQ(e->ToString(), "((a.price >= 10) AND (a.price <= 20))");
}

TEST(BetweenTest, Evaluates) {
  FakeContext ctx(3);
  ctx.Bind(0, Tick(0, 15));
  EXPECT_EQ(Eval("a.price BETWEEN 10 AND 20", ctx, ExprContext::kPredicate),
            Value::Bool(true));
  EXPECT_EQ(Eval("a.price BETWEEN 16 AND 20", ctx, ExprContext::kPredicate),
            Value::Bool(false));
  EXPECT_EQ(Eval("a.price BETWEEN 15 AND 15", ctx, ExprContext::kPredicate),
            Value::Bool(true));  // inclusive bounds
}

TEST(InTest, DesugarsToDisjunction) {
  auto e = ParseExpression("a.volume IN (1, 2, 3)").value();
  EXPECT_EQ(e->ToString(),
            "(((a.volume = 1) OR (a.volume = 2)) OR (a.volume = 3))");
}

TEST(InTest, EvaluatesOverStrings) {
  FakeContext ctx(3);
  ctx.Bind(0, Tick(0, 1, 1, "IBM"));
  EXPECT_EQ(Eval("a.symbol IN ('AAPL', 'IBM')", ctx, ExprContext::kPredicate),
            Value::Bool(true));
  EXPECT_EQ(Eval("a.symbol IN ('AAPL', 'MSFT')", ctx, ExprContext::kPredicate),
            Value::Bool(false));
}

TEST(InTest, SingleElementList) {
  FakeContext ctx(3);
  ctx.Bind(0, Tick(0, 5));
  EXPECT_EQ(Eval("a.price IN (5)", ctx, ExprContext::kPredicate),
            Value::Bool(true));
}

// -- CASE ----------------------------------------------------------------------

TEST(CaseTest, ParsesAndUnparses) {
  auto e = ParseExpression(
               "CASE WHEN a.price > 10 THEN 'high' WHEN a.price > 5 THEN 'mid' "
               "ELSE 'low' END")
               .value();
  EXPECT_EQ(e->ToString(),
            "CASE WHEN (a.price > 10) THEN 'high' WHEN (a.price > 5) THEN "
            "'mid' ELSE 'low' END");
}

TEST(CaseTest, FirstTrueBranchWins) {
  FakeContext ctx(3);
  ctx.Bind(0, Tick(0, 7));
  EXPECT_EQ(Eval("CASE WHEN a.price > 10 THEN 'high' "
                 "WHEN a.price > 5 THEN 'mid' ELSE 'low' END",
                 ctx),
            Value::String("mid"));
}

TEST(CaseTest, MissingElseYieldsNull) {
  FakeContext ctx(3);
  ctx.Bind(0, Tick(0, 1));
  EXPECT_TRUE(Eval("CASE WHEN a.price > 10 THEN 1 END", ctx).is_null());
}

TEST(CaseTest, NumericBranchesPromote) {
  FakeContext ctx(3);
  ctx.Bind(0, Tick(0, 100));
  // INT and FLOAT branches: static type FLOAT, INT branch promoted.
  const Value v = Eval("CASE WHEN a.price > 10 THEN 1 ELSE 0.5 END", ctx);
  EXPECT_EQ(v.type(), ValueType::kFloat);
  EXPECT_DOUBLE_EQ(v.AsFloat(), 1.0);
}

TEST(CaseTest, NullConditionTreatedAsFalse) {
  FakeContext ctx(3);  // a unbound: a.price > 10 is NULL
  EXPECT_EQ(Eval("CASE WHEN a.price > 10 THEN 1 ELSE 2 END", ctx), Value::Int(2));
}

TEST(CaseTest, TypeErrors) {
  auto layout = AbcLayout();
  for (const std::string text : {
           "CASE WHEN 1 THEN 2 ELSE 3 END",          // non-bool condition
           "CASE WHEN TRUE THEN 1 ELSE 'x' END",     // incompatible branches
       }) {
    auto e = ParseExpression(text).value();
    EXPECT_FALSE(TypeCheck(e.get(), layout, ExprContext::kOutput).ok()) << text;
  }
  EXPECT_FALSE(ParseExpression("CASE ELSE 1 END").ok());  // WHEN required
  EXPECT_FALSE(ParseExpression("CASE WHEN TRUE THEN 1").ok());  // END required
}

TEST(CaseTest, UsableAsRankScore) {
  // CASE-based scoring: a common "severity bucketing" idiom.
  auto plan = CompileQueryText(
      "SELECT a.price FROM Stock MATCH PATTERN SEQ(a) "
      "RANK BY CASE WHEN a.price > 500 THEN 3 WHEN a.price > 100 THEN 2 "
      "ELSE 1 END DESC LIMIT 2",
      testing::StockSchema());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Bounded branches -> statically prunable.
  EXPECT_TRUE((*plan)->score_prunable);
}

// -- String functions ------------------------------------------------------------

TEST(StringFuncTest, UpperLower) {
  FakeContext ctx(3);
  EXPECT_EQ(Eval("UPPER('IbM')", ctx), Value::String("IBM"));
  EXPECT_EQ(Eval("LOWER('IbM')", ctx), Value::String("ibm"));
}

TEST(StringFuncTest, Length) {
  FakeContext ctx(3);
  EXPECT_EQ(Eval("LENGTH('')", ctx), Value::Int(0));
  EXPECT_EQ(Eval("LENGTH('hello')", ctx), Value::Int(5));
}

TEST(StringFuncTest, Concat) {
  FakeContext ctx(3);
  ctx.Bind(0, Tick(0, 1, 1, "IBM"));
  EXPECT_EQ(Eval("CONCAT('sym=', a.symbol)", ctx), Value::String("sym=IBM"));
  EXPECT_EQ(Eval("CONCAT('a', 'b', 'c')", ctx), Value::String("abc"));
}

TEST(StringFuncTest, SubstrOneBasedAndClamped) {
  FakeContext ctx(3);
  EXPECT_EQ(Eval("SUBSTR('hello', 2, 3)", ctx), Value::String("ell"));
  EXPECT_EQ(Eval("SUBSTR('hello', 1, 99)", ctx), Value::String("hello"));
  EXPECT_EQ(Eval("SUBSTR('hello', 9, 2)", ctx), Value::String(""));
  EXPECT_EQ(Eval("SUBSTRING('hello', 5, 1)", ctx), Value::String("o"));
}

TEST(StringFuncTest, NullPropagates) {
  FakeContext ctx(3);  // a unbound
  EXPECT_TRUE(Eval("UPPER(a.symbol)", ctx).is_null());
  EXPECT_TRUE(Eval("CONCAT('x', a.symbol)", ctx).is_null());
  EXPECT_TRUE(Eval("LENGTH(a.symbol)", ctx).is_null());
}

TEST(StringFuncTest, TypeErrors) {
  auto layout = AbcLayout();
  for (const std::string text : {
           "UPPER(5)",
           "LENGTH(a.price)",
           "CONCAT()",
           "SUBSTR('x', 'y', 1)",
           "SUBSTR('x', 1)",
       }) {
    auto e = ParseExpression(text);
    if (!e.ok()) continue;  // parse-level rejection also acceptable
    EXPECT_FALSE(TypeCheck(e->get(), layout, ExprContext::kOutput).ok()) << text;
  }
}

TEST(StringFuncTest, ComposableWithComparisons) {
  FakeContext ctx(3);
  ctx.Bind(0, Tick(0, 1, 1, "ibm"));
  EXPECT_EQ(Eval("UPPER(a.symbol) = 'IBM'", ctx, ExprContext::kPredicate),
            Value::Bool(true));
  EXPECT_EQ(Eval("LENGTH(CONCAT(a.symbol, 'x')) = 4", ctx,
                 ExprContext::kPredicate),
            Value::Bool(true));
}

// -- Soft keywords remain usable as identifiers --------------------------------

TEST(SoftKeywordTest, CaseWordsUsableAsAttributeNames) {
  // "when", "then", "end" are soft keywords: still valid attribute names.
  auto schema = Schema::Make("Soft", {Attribute{"when", ValueType::kInt, {}},
                                      Attribute{"given", ValueType::kInt, {}}})
                    .value();
  auto plan = CompileQueryText(
      "SELECT a.when FROM Soft MATCH PATTERN SEQ(a) WHERE a.when > 0", schema);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
}

}  // namespace
}  // namespace cepr
