#include "expr/typecheck.h"

#include <gtest/gtest.h>

#include "lang/parser.h"
#include "testing/helpers.h"

namespace cepr {
namespace {

using testing::AbcLayout;

// Parses an expression and type checks it against SEQ(a, b+, c) / Stock.
Result<ExprPtr> Check(const std::string& text,
                      ExprContext context = ExprContext::kPredicate) {
  auto layout = AbcLayout();
  CEPR_ASSIGN_OR_RETURN(ExprPtr e, ParseExpression(text));
  CEPR_RETURN_IF_ERROR(TypeCheck(e.get(), layout, context));
  return e;
}

ValueType TypeOf(const std::string& text,
                 ExprContext context = ExprContext::kOutput) {
  auto r = Check(text, context);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? (*r)->result_type : ValueType::kNull;
}

TEST(TypeCheckTest, LiteralTypes) {
  EXPECT_EQ(TypeOf("42"), ValueType::kInt);
  EXPECT_EQ(TypeOf("2.5"), ValueType::kFloat);
  EXPECT_EQ(TypeOf("'x'"), ValueType::kString);
  EXPECT_EQ(TypeOf("TRUE"), ValueType::kBool);
}

TEST(TypeCheckTest, VarRefResolvesSchemaType) {
  auto e = Check("a.price > 0");
  ASSERT_TRUE(e.ok()) << e.status();
  const Expr& ref = *(*e)->children[0];
  EXPECT_EQ(ref.var_index, 0);
  EXPECT_EQ(ref.attr_index, 1);
  EXPECT_EQ(ref.result_type, ValueType::kFloat);
}

TEST(TypeCheckTest, TimestampPseudoAttribute) {
  auto e = Check("a.ts", ExprContext::kOutput);
  ASSERT_TRUE(e.ok()) << e.status();
  EXPECT_EQ((*e)->attr_index, kTimestampAttr);
  EXPECT_EQ((*e)->result_type, ValueType::kInt);
}

TEST(TypeCheckTest, UnknownVariableFails) {
  auto r = Check("z.price > 0");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(TypeCheckTest, UnknownAttributeFails) {
  EXPECT_FALSE(Check("a.missing > 0").ok());
}

TEST(TypeCheckTest, KleeneVarNeedsIterationOrAggregate) {
  auto r = Check("b.price > 0");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
  EXPECT_TRUE(Check("b[i].price > 0").ok());
  EXPECT_TRUE(Check("MIN(b.price) > 0").ok());
}

TEST(TypeCheckTest, IterRefOnSingleVarFails) {
  EXPECT_FALSE(Check("a[i].price > 0").ok());
}

TEST(TypeCheckTest, IterRefForbiddenInOutputContext) {
  EXPECT_FALSE(Check("b[i].price", ExprContext::kOutput).ok());
  EXPECT_FALSE(Check("b[i-1].price", ExprContext::kOutput).ok());
  EXPECT_TRUE(Check("FIRST(b).price", ExprContext::kOutput).ok());
}

TEST(TypeCheckTest, AggregateTypes) {
  EXPECT_EQ(TypeOf("MIN(b.price)"), ValueType::kFloat);
  EXPECT_EQ(TypeOf("MAX(b.volume)"), ValueType::kInt);
  EXPECT_EQ(TypeOf("SUM(b.volume)"), ValueType::kInt);
  EXPECT_EQ(TypeOf("AVG(b.volume)"), ValueType::kFloat);
  EXPECT_EQ(TypeOf("COUNT(b)"), ValueType::kInt);
  EXPECT_EQ(TypeOf("FIRST(b).symbol"), ValueType::kString);
  EXPECT_EQ(TypeOf("LAST(b).price"), ValueType::kFloat);
}

TEST(TypeCheckTest, AggregateOverSingleVarFails) {
  EXPECT_FALSE(Check("MIN(a.price) > 0").ok());
  EXPECT_FALSE(Check("COUNT(a) > 0").ok());
}

TEST(TypeCheckTest, NumericAggregateOverStringFails) {
  EXPECT_FALSE(Check("MIN(b.symbol) > 'a'").ok());
  EXPECT_TRUE(Check("FIRST(b).symbol = 'a'").ok());
}

TEST(TypeCheckTest, ArithmeticPromotion) {
  EXPECT_EQ(TypeOf("a.volume + a.volume"), ValueType::kInt);
  EXPECT_EQ(TypeOf("a.volume + a.price"), ValueType::kFloat);
  EXPECT_EQ(TypeOf("a.volume / a.volume"), ValueType::kFloat);  // / is FLOAT
  EXPECT_EQ(TypeOf("a.volume % 10"), ValueType::kInt);
}

TEST(TypeCheckTest, ModNeedsInts) {
  EXPECT_FALSE(Check("a.price % 10 = 0").ok());
}

TEST(TypeCheckTest, ArithmeticOnStringsFails) {
  EXPECT_FALSE(Check("a.symbol + 1 > 0").ok());
}

TEST(TypeCheckTest, ComparisonYieldsBool) {
  EXPECT_EQ(TypeOf("a.price < 10"), ValueType::kBool);
  EXPECT_EQ(TypeOf("a.symbol = 'IBM'"), ValueType::kBool);
}

TEST(TypeCheckTest, OrderingStringsAllowedNumbersVsStringsNot) {
  EXPECT_TRUE(Check("a.symbol < 'M'").ok());
  EXPECT_FALSE(Check("a.symbol < 5").ok());
  EXPECT_FALSE(Check("a.price = 'x'").ok());
}

TEST(TypeCheckTest, NullComparableWithAnything) {
  EXPECT_TRUE(Check("a.price = NULL").ok());
  EXPECT_TRUE(Check("a.symbol != NULL").ok());
}

TEST(TypeCheckTest, BooleanConnectivesNeedBools) {
  EXPECT_TRUE(Check("a.price > 1 AND a.volume < 5").ok());
  EXPECT_FALSE(Check("a.price AND a.volume < 5").ok());
  EXPECT_FALSE(Check("NOT a.price").ok());
  EXPECT_TRUE(Check("NOT (a.price > 1)").ok());
}

TEST(TypeCheckTest, PredicateRootMustBeBool) {
  auto r = Check("a.price + 1");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("predicate must be BOOL"),
            std::string::npos);
}

TEST(TypeCheckTest, OutputContextAllowsAnyType) {
  EXPECT_TRUE(Check("a.price + 1", ExprContext::kOutput).ok());
  EXPECT_TRUE(Check("a.symbol", ExprContext::kOutput).ok());
}

TEST(TypeCheckTest, ScalarFunctionTypes) {
  EXPECT_EQ(TypeOf("ABS(a.volume)"), ValueType::kInt);
  EXPECT_EQ(TypeOf("ABS(a.price)"), ValueType::kFloat);
  EXPECT_EQ(TypeOf("SQRT(a.price)"), ValueType::kFloat);
  EXPECT_EQ(TypeOf("FLOOR(a.price)"), ValueType::kInt);
  EXPECT_EQ(TypeOf("LEAST(a.volume, 10)"), ValueType::kInt);
  EXPECT_EQ(TypeOf("GREATEST(a.price, 10)"), ValueType::kFloat);
  EXPECT_EQ(TypeOf("POW(a.price, 2)"), ValueType::kFloat);
}

TEST(TypeCheckTest, ScalarFunctionArityChecked) {
  EXPECT_FALSE(Check("POW(a.price)", ExprContext::kOutput).ok());
  EXPECT_FALSE(Check("ABS(a.price, 2)", ExprContext::kOutput).ok());
}

TEST(TypeCheckTest, ScalarFunctionNeedsNumeric) {
  EXPECT_FALSE(Check("ABS(a.symbol)", ExprContext::kOutput).ok());
}

TEST(TypeCheckTest, NegatedVarAllowedInPredicateNotOutput) {
  BindingLayout layout({PatternVar{"a", false, false, ""},
                        PatternVar{"n", false, true, ""},
                        PatternVar{"c", false, false, ""}},
                       testing::StockSchema());
  auto e = ParseExpression("n.price > a.price").value();
  EXPECT_TRUE(TypeCheck(e.get(), layout, ExprContext::kPredicate).ok());
  auto e2 = ParseExpression("n.price").value();
  EXPECT_FALSE(TypeCheck(e2.get(), layout, ExprContext::kOutput).ok());
}

TEST(TypeCheckTest, UnaryMinusTypes) {
  EXPECT_EQ(TypeOf("-a.volume"), ValueType::kInt);
  EXPECT_EQ(TypeOf("-a.price"), ValueType::kFloat);
  EXPECT_FALSE(Check("-a.symbol = 'x'").ok());
}

}  // namespace
}  // namespace cepr
