#include "expr/aggregate.h"

#include <cmath>

#include <gtest/gtest.h>

#include "expr/typecheck.h"
#include "lang/parser.h"
#include "testing/helpers.h"

namespace cepr {
namespace {

using testing::AbcLayout;
using testing::Tick;

ExprPtr Resolved(const std::string& text) {
  auto layout = AbcLayout();
  auto e = ParseExpression(text).value();
  auto st = TypeCheck(e.get(), layout, ExprContext::kOutput);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return e;
}

TEST(AssignAggSlotsTest, DedupesIdenticalAggregates) {
  ExprPtr e1 = Resolved("MIN(b.price) + MIN(b.price)");
  std::vector<Expr*> exprs = {e1.get()};
  const auto specs = AssignAggSlots(exprs);
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(e1->children[0]->agg_slot, 0);
  EXPECT_EQ(e1->children[1]->agg_slot, 0);
}

TEST(AssignAggSlotsTest, SumAndAvgShareASlot) {
  ExprPtr e = Resolved("SUM(b.volume) + AVG(b.volume)");
  std::vector<Expr*> exprs = {e.get()};
  const auto specs = AssignAggSlots(exprs);
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].kind, AggStorageKind::kSum);
  EXPECT_EQ(e->children[0]->agg_slot, e->children[1]->agg_slot);
}

TEST(AssignAggSlotsTest, DistinctAggregatesGetDistinctSlots) {
  ExprPtr e = Resolved("MIN(b.price) + MAX(b.price) + SUM(b.price)");
  std::vector<Expr*> exprs = {e.get()};
  const auto specs = AssignAggSlots(exprs);
  EXPECT_EQ(specs.size(), 3u);
}

TEST(AssignAggSlotsTest, DifferentAttributesDifferentSlots) {
  ExprPtr e = Resolved("MIN(b.price) + MIN(b.volume)");
  std::vector<Expr*> exprs = {e.get()};
  EXPECT_EQ(AssignAggSlots(exprs).size(), 2u);
}

TEST(AssignAggSlotsTest, SharedAcrossExpressions) {
  ExprPtr e1 = Resolved("MIN(b.price)");
  ExprPtr e2 = Resolved("MIN(b.price) * 2");
  std::vector<Expr*> exprs = {e1.get(), e2.get()};
  const auto specs = AssignAggSlots(exprs);
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(e1->agg_slot, 0);
  EXPECT_EQ(e2->children[0]->agg_slot, 0);
}

TEST(AssignAggSlotsTest, CountFirstLastNeedNoSlot) {
  ExprPtr e = Resolved("COUNT(b) + FIRST(b).volume + LAST(b).volume");
  std::vector<Expr*> exprs = {e.get()};
  EXPECT_TRUE(AssignAggSlots(exprs).empty());
}

TEST(AggStatesTest, InitialValuesPerKind) {
  const std::vector<AggSpec> specs = {{AggStorageKind::kMin, 1, 1},
                                      {AggStorageKind::kMax, 1, 1},
                                      {AggStorageKind::kSum, 1, 1}};
  AggStates states(&specs);
  EXPECT_TRUE(std::isinf(states.value(0)));
  EXPECT_GT(states.value(0), 0);  // +inf
  EXPECT_TRUE(std::isinf(states.value(1)));
  EXPECT_LT(states.value(1), 0);  // -inf
  EXPECT_EQ(states.value(2), 0.0);
}

TEST(AggStatesTest, AcceptUpdatesOnlyMatchingVariable) {
  const std::vector<AggSpec> specs = {{AggStorageKind::kSum, 1, 1},
                                      {AggStorageKind::kSum, 2, 1}};
  AggStates states(&specs);
  states.Accept(1, Tick(0, 10.0));
  EXPECT_EQ(states.value(0), 10.0);
  EXPECT_EQ(states.value(1), 0.0);
}

TEST(AggStatesTest, IncrementalMinMaxSum) {
  const std::vector<AggSpec> specs = {{AggStorageKind::kMin, 1, 1},
                                      {AggStorageKind::kMax, 1, 1},
                                      {AggStorageKind::kSum, 1, 1}};
  AggStates states(&specs);
  for (double p : {20.0, 5.0, 12.0}) states.Accept(1, Tick(0, p));
  EXPECT_EQ(states.value(0), 5.0);
  EXPECT_EQ(states.value(1), 20.0);
  EXPECT_EQ(states.value(2), 37.0);
}

TEST(AggStatesTest, TimestampAggregation) {
  const std::vector<AggSpec> specs = {{AggStorageKind::kMax, 1, kTimestampAttr}};
  AggStates states(&specs);
  states.Accept(1, Tick(100, 1.0));
  states.Accept(1, Tick(250, 1.0));
  EXPECT_EQ(states.value(0), 250.0);
}

TEST(AggStatesTest, NullCellsAreSkipped) {
  const std::vector<AggSpec> specs = {{AggStorageKind::kSum, 1, 1}};
  AggStates states(&specs);
  Event with_null(testing::StockSchema(), 0,
                  {Value::String("S"), Value::Null(), Value::Int(1)});
  states.Accept(1, with_null);
  EXPECT_EQ(states.value(0), 0.0);
  states.Accept(1, Tick(1, 7.0));
  EXPECT_EQ(states.value(0), 7.0);
}

TEST(AggStatesTest, CopyIsIndependent) {
  const std::vector<AggSpec> specs = {{AggStorageKind::kSum, 1, 1}};
  AggStates a(&specs);
  a.Accept(1, Tick(0, 5.0));
  AggStates b = a;  // fork, as in SKIP_TILL_ANY_MATCH
  b.Accept(1, Tick(1, 5.0));
  EXPECT_EQ(a.value(0), 5.0);
  EXPECT_EQ(b.value(0), 10.0);
}

}  // namespace
}  // namespace cepr
