#ifndef CEPR_TESTS_TESTING_HELPERS_H_
#define CEPR_TESTS_TESTING_HELPERS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "event/event.h"
#include "expr/eval.h"
#include "expr/typecheck.h"

namespace cepr {
namespace testing {

/// Stock(symbol STRING, price FLOAT RANGE [1,1000], volume INT RANGE
/// [1,10000]) — the workhorse schema of the test suite.
inline SchemaPtr StockSchema() {
  static const SchemaPtr kSchema =
      Schema::Make("Stock",
                   {Attribute{"symbol", ValueType::kString, std::nullopt},
                    Attribute{"price", ValueType::kFloat, AttributeRange{1, 1000}},
                    Attribute{"volume", ValueType::kInt, AttributeRange{1, 10000}}})
          .value();
  return kSchema;
}

/// Layout for PATTERN SEQ(a, b+, c) over Stock.
inline BindingLayout AbcLayout() {
  return BindingLayout({PatternVar{"a", false, false, ""},
                        PatternVar{"b", true, false, ""},
                        PatternVar{"c", false, false, ""}},
                       StockSchema());
}

/// Builds a Stock event.
inline Event Tick(Timestamp ts, double price, int64_t volume = 100,
                  const std::string& symbol = "S0") {
  return Event(StockSchema(), ts,
               {Value::String(symbol), Value::Float(price), Value::Int(volume)});
}

/// Hand-wired EvalContext for expression unit tests: bindings are plain
/// event vectors per variable index, plus explicit aggregate slot values
/// and an optional candidate.
class FakeContext : public EvalContext {
 public:
  explicit FakeContext(size_t num_vars) : bindings_(num_vars) {}

  FakeContext& Bind(int var, Event event) {
    owned_.push_back(std::make_shared<Event>(std::move(event)));
    bindings_[static_cast<size_t>(var)].push_back(owned_.back().get());
    return *this;
  }
  FakeContext& Candidate(int var, const Event* event) {
    candidate_var_ = var;
    candidate_ = event;
    return *this;
  }
  FakeContext& Slot(int slot, double value) {
    if (slot >= static_cast<int>(slots_.size())) slots_.resize(slot + 1, 0.0);
    slots_[static_cast<size_t>(slot)] = value;
    return *this;
  }

  const Event* SingleEvent(int var) const override {
    if (var == candidate_var_) return candidate_;
    const auto& b = bindings_[static_cast<size_t>(var)];
    return b.empty() ? nullptr : b.front();
  }
  const Event* KleeneFirst(int var) const override {
    const auto& b = bindings_[static_cast<size_t>(var)];
    return b.empty() ? nullptr : b.front();
  }
  const Event* KleeneLast(int var) const override {
    const auto& b = bindings_[static_cast<size_t>(var)];
    return b.empty() ? nullptr : b.back();
  }
  const Event* KleeneCurrent(int var) const override {
    return var == candidate_var_ ? candidate_ : nullptr;
  }
  int64_t KleeneCount(int var) const override {
    return static_cast<int64_t>(bindings_[static_cast<size_t>(var)].size());
  }
  double AggValue(int slot) const override {
    return slots_[static_cast<size_t>(slot)];
  }

 private:
  std::vector<std::vector<const Event*>> bindings_;
  std::vector<std::shared_ptr<Event>> owned_;
  std::vector<double> slots_;
  int candidate_var_ = -1;
  const Event* candidate_ = nullptr;
};

}  // namespace testing
}  // namespace cepr

#endif  // CEPR_TESTS_TESTING_HELPERS_H_
