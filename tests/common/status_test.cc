#include "common/status.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"

namespace cepr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  const Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::TypeError("x").code(), StatusCode::kTypeError);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Status Fails() { return Status::Internal("boom"); }
Status Succeeds() { return Status::OK(); }

Status UseReturnIfError(bool fail) {
  CEPR_RETURN_IF_ERROR(fail ? Fails() : Succeeds());
  return Status::InvalidArgument("reached end");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(UseReturnIfError(true).code(), StatusCode::kInternal);
  EXPECT_EQ(UseReturnIfError(false).code(), StatusCode::kInvalidArgument);
}

TEST(ErrnoStringTest, FormatsKnownErrnos) {
  // Exact spellings are libc-specific; the contract is a non-empty,
  // errno-specific description (what strerror would say, minus the race).
  EXPECT_FALSE(ErrnoString(ENOENT).empty());
  EXPECT_FALSE(ErrnoString(EACCES).empty());
  EXPECT_NE(ErrnoString(ENOENT), ErrnoString(EACCES));
}

TEST(ErrnoStringTest, SurvivesUnknownErrno) {
  const std::string s = ErrnoString(123456789);
  EXPECT_FALSE(s.empty());
}

TEST(ErrnoStringTest, ConcurrentCallsReturnIndependentBuffers) {
  // The reason ErrnoString exists: std::strerror may share one static
  // buffer across threads. Hammer two distinct errnos from many threads
  // and require every result to be the right one for its input.
  const std::string want_noent = ErrnoString(ENOENT);
  const std::string want_acces = ErrnoString(EACCES);
  ASSERT_NE(want_noent, want_acces);
  std::vector<std::thread> threads;
  std::vector<int> bad_results(8, 0);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      const int err = (t % 2 == 0) ? ENOENT : EACCES;
      const std::string& want = (t % 2 == 0) ? want_noent : want_acces;
      for (int i = 0; i < 2000; ++i) {
        if (ErrnoString(err) != want) {
          bad_results[t]++;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 8; ++t) EXPECT_EQ(bad_results[t], 0) << "thread " << t;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterEven(int x) {
  CEPR_ASSIGN_OR_RETURN(const int half, HalveEven(x));
  return HalveEven(half);
}

TEST(ResultTest, AssignOrReturnChains) {
  auto ok = QuarterEven(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);

  auto inner_fail = QuarterEven(6);  // 6/2 = 3, odd
  ASSERT_FALSE(inner_fail.ok());
  EXPECT_EQ(inner_fail.status().message(), "odd");

  ASSERT_FALSE(QuarterEven(5).ok());
}

}  // namespace
}  // namespace cepr
