#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace cepr {
namespace {

TEST(RandomTest, DeterministicForSeed) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1);
  Random b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RandomTest, UniformStaysInBound) {
  Random rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.Uniform(17), 17u);
}

TEST(RandomTest, UniformCoversRange) {
  Random rng(7);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) ++seen[rng.Uniform(10)];
  for (int count : seen) {
    EXPECT_GT(count, 800);  // ~1000 expected
    EXPECT_LT(count, 1200);
  }
}

TEST(RandomTest, UniformIntInclusiveBounds) {
  Random rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, GaussianMomentsRoughlyStandard) {
  Random rng(5);
  double sum = 0;
  double sum_sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RandomTest, OneInExtremes) {
  Random rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.OneIn(0.0));
    EXPECT_TRUE(rng.OneIn(1.0));
  }
}

TEST(ZipfTest, UniformWhenThetaZero) {
  ZipfSampler zipf(10, 0.0, 42);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 20000; ++i) ++seen[zipf.Next()];
  for (int count : seen) {
    EXPECT_GT(count, 1600);
    EXPECT_LT(count, 2400);
  }
}

TEST(ZipfTest, SkewConcentratesOnLowRanks) {
  ZipfSampler zipf(100, 1.2, 42);
  int low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Next() < 10) ++low;
  }
  // With theta=1.2 over 100 items, the first 10 ranks carry well over half
  // the mass.
  EXPECT_GT(low, n / 2);
}

TEST(ZipfTest, AlwaysInRange) {
  ZipfSampler zipf(7, 0.9, 1);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Next(), 7u);
}

TEST(ZipfTest, SingleItemAlwaysZero) {
  ZipfSampler zipf(1, 1.0, 5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Next(), 0u);
}

// Property sweep: monotone rank frequencies for a range of skews.
class ZipfSkewTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSkewTest, FrequencyDecreasesWithRank) {
  const double theta = GetParam();
  ZipfSampler zipf(20, theta, 42);
  std::vector<int> seen(20, 0);
  for (int i = 0; i < 50000; ++i) ++seen[zipf.Next()];
  // Compare aggregated halves to tolerate sampling noise.
  const int first_half = std::accumulate(seen.begin(), seen.begin() + 10, 0);
  const int second_half = std::accumulate(seen.begin() + 10, seen.end(), 0);
  EXPECT_GT(first_half, second_half);
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfSkewTest,
                         ::testing::Values(0.2, 0.5, 0.8, 1.0, 1.5));

}  // namespace
}  // namespace cepr
