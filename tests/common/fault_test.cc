// FaultInjector: the fault schedule must be a pure function of (seed,
// point, configuration, key) — determinism is what lets the integration
// suite replay identical fault schedules into the serial and sharded
// engines and demand identical outcomes.

#include "common/fault.h"

#include <gtest/gtest.h>

#include <vector>

namespace cepr {
namespace {

TEST(FaultInjectorTest, UnarmedPointsNeverFire) {
  FaultInjector injector(42);
  for (uint64_t key = 0; key < 100; ++key) {
    EXPECT_FALSE(injector.ShouldFire(fault_points::kEvalPoison, key));
    EXPECT_FALSE(injector.ShouldFire("no.such.point", key));
  }
  EXPECT_EQ(injector.fires(fault_points::kEvalPoison), 0u);
}

TEST(FaultInjectorTest, KeyedPointFiresExactlyOnListedKeys) {
  FaultInjector injector(1);
  injector.ArmKeys(fault_points::kEvalPoison, {3, 7, 7, 500});
  for (uint64_t key = 0; key < 600; ++key) {
    const bool expected = key == 3 || key == 7 || key == 500;
    EXPECT_EQ(injector.ShouldFire(fault_points::kEvalPoison, key), expected)
        << "key " << key;
  }
  // The duplicate key in the arm list doesn't double-fire: 600 probes hit
  // 3 distinct listed keys.
  EXPECT_EQ(injector.fires(fault_points::kEvalPoison), 3u);
}

TEST(FaultInjectorTest, RateModeIsDeterministicPerSeed) {
  FaultInjector a(99);
  FaultInjector b(99);
  FaultInjector c(100);
  a.ArmRate(fault_points::kCsvBadRecord, 0.2);
  b.ArmRate(fault_points::kCsvBadRecord, 0.2);
  c.ArmRate(fault_points::kCsvBadRecord, 0.2);

  int fires = 0;
  bool differs_across_seeds = false;
  for (uint64_t key = 0; key < 2000; ++key) {
    const bool fa = a.ShouldFire(fault_points::kCsvBadRecord, key);
    const bool fb = b.ShouldFire(fault_points::kCsvBadRecord, key);
    EXPECT_EQ(fa, fb) << "same seed must agree at key " << key;
    if (fa != c.ShouldFire(fault_points::kCsvBadRecord, key)) {
      differs_across_seeds = true;
    }
    if (fa) ++fires;
  }
  EXPECT_TRUE(differs_across_seeds);
  // 20% of 2000 with generous slack: the hash must not degenerate.
  EXPECT_GT(fires, 300);
  EXPECT_LT(fires, 500);
}

TEST(FaultInjectorTest, RateModeIsIndependentPerPoint) {
  FaultInjector injector(7);
  injector.ArmRate(fault_points::kEvalPoison, 0.5);
  injector.ArmRate(fault_points::kShardStall, 0.5);
  bool differs = false;
  for (uint64_t key = 0; key < 256 && !differs; ++key) {
    differs = injector.ShouldFire(fault_points::kEvalPoison, key) !=
              injector.ShouldFire(fault_points::kShardStall, key);
  }
  EXPECT_TRUE(differs) << "points share one schedule; hashes not mixed in";
}

TEST(FaultInjectorTest, RateZeroAndOneAreAbsolute) {
  FaultInjector injector(5);
  injector.ArmRate("never", 0.0);
  injector.ArmRate("always", 1.0);
  for (uint64_t key = 0; key < 100; ++key) {
    EXPECT_FALSE(injector.ShouldFire("never", key));
    EXPECT_TRUE(injector.ShouldFire("always", key));
  }
}

TEST(FaultInjectorTest, DisarmAndRearmMidRun) {
  FaultInjector injector(11);
  injector.ArmKeys(fault_points::kShardStall, {0, 1, 2});
  EXPECT_TRUE(injector.ShouldFire(fault_points::kShardStall, 1));
  injector.Disarm(fault_points::kShardStall);
  EXPECT_FALSE(injector.ShouldFire(fault_points::kShardStall, 1));
  injector.Rearm(fault_points::kShardStall);
  EXPECT_TRUE(injector.ShouldFire(fault_points::kShardStall, 1));
  // Disarm/Rearm of an unknown point is a harmless no-op.
  injector.Disarm("no.such.point");
  injector.Rearm("no.such.point");
}

TEST(FaultInjectorTest, FiresCountsOnlyActualFires) {
  FaultInjector injector(3);
  injector.ArmKeys(fault_points::kShardRingFull, {10});
  for (uint64_t key = 0; key < 20; ++key) {
    (void)injector.ShouldFire(fault_points::kShardRingFull, key);
  }
  EXPECT_EQ(injector.fires(fault_points::kShardRingFull), 1u);
  injector.Disarm(fault_points::kShardRingFull);
  (void)injector.ShouldFire(fault_points::kShardRingFull, 10);
  EXPECT_EQ(injector.fires(fault_points::kShardRingFull), 1u);
}

}  // namespace
}  // namespace cepr
