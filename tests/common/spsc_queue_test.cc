#include "common/spsc_queue.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

namespace cepr {
namespace {

TEST(SpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscQueue<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscQueue<int>(1000).capacity(), 1024u);
}

TEST(SpscQueueTest, PushPopSingleThread) {
  SpscQueue<int> q(4);
  EXPECT_TRUE(q.Empty());
  int v = 0;
  EXPECT_FALSE(q.TryPop(&v));

  for (int i = 0; i < 4; ++i) {
    int item = i;
    EXPECT_TRUE(q.TryPush(item)) << i;
  }
  int overflow = 99;
  EXPECT_FALSE(q.TryPush(overflow));  // full
  EXPECT_EQ(q.size(), 4u);

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.TryPop(&v));
    EXPECT_EQ(v, i);  // FIFO
  }
  EXPECT_TRUE(q.Empty());
}

TEST(SpscQueueTest, WrapsAroundManyTimes) {
  SpscQueue<int> q(8);
  int v = 0;
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < 5; ++i) {
      int item = round * 5 + i;
      ASSERT_TRUE(q.TryPush(item));
    }
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(q.TryPop(&v));
      EXPECT_EQ(v, round * 5 + i);
    }
  }
}

TEST(SpscQueueTest, MoveOnlyPayload) {
  SpscQueue<std::unique_ptr<int>> q(4);
  auto item = std::make_unique<int>(42);
  ASSERT_TRUE(q.TryPush(item));
  EXPECT_EQ(item, nullptr);  // moved out
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.TryPop(&out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

// Cross-thread stress: one producer, one consumer, a deliberately tiny
// ring so every path (full, empty, wrap) is exercised millions of times.
// Run under ThreadSanitizer to validate the memory ordering (see
// docs/OPERATIONS.md for the sanitizer build).
TEST(SpscQueueStressTest, SequenceSurvivesConcurrency) {
  constexpr uint64_t kItems = 1u << 20;
  SpscQueue<uint64_t> q(16);

  std::thread producer([&q] {
    for (uint64_t i = 0; i < kItems; ++i) {
      uint64_t item = i;
      while (!q.TryPush(item)) std::this_thread::yield();
    }
  });

  uint64_t received = 0;
  uint64_t checksum = 0;
  while (received < kItems) {
    uint64_t v = 0;
    if (q.TryPop(&v)) {
      ASSERT_EQ(v, received);  // exact FIFO, no loss, no duplication
      checksum += v;
      ++received;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();

  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(checksum, kItems * (kItems - 1) / 2);
}

}  // namespace
}  // namespace cepr
