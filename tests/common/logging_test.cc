#include "common/logging.h"

#include <gtest/gtest.h>

namespace cepr {
namespace {

TEST(LoggingTest, CheckPassesSilently) {
  CEPR_CHECK(1 + 1 == 2);
  CEPR_CHECK_EQ(4, 4);
  CEPR_CHECK_NE(4, 5);
  CEPR_CHECK_LT(1, 2);
  CEPR_CHECK_LE(2, 2);
  CEPR_CHECK_GT(3, 2);
  CEPR_CHECK_GE(3, 3);
  SUCCEED();
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(CEPR_CHECK(1 == 2) << "context " << 42,
               "Check failed: 1 == 2 context 42");
}

TEST(LoggingDeathTest, CheckEqFailureAborts) {
  const int x = 3;
  EXPECT_DEATH(CEPR_CHECK_EQ(x, 4), "Check failed");
}

TEST(LoggingDeathTest, FatalLogAborts) {
  EXPECT_DEATH(CEPR_LOG(FATAL) << "boom", "boom");
}

TEST(LoggingTest, LevelsFilterOutput) {
  // Below-threshold messages must not reach stderr.
  SetLogLevel(LogLevel::kError);
  testing::internal::CaptureStderr();
  CEPR_LOG(INFO) << "hidden info";
  CEPR_LOG(WARNING) << "hidden warning";
  CEPR_LOG(ERROR) << "visible error";
  const std::string err = testing::internal::GetCapturedStderr();
  SetLogLevel(LogLevel::kInfo);
  EXPECT_EQ(err.find("hidden info"), std::string::npos);
  EXPECT_EQ(err.find("hidden warning"), std::string::npos);
  EXPECT_NE(err.find("visible error"), std::string::npos);
}

TEST(LoggingTest, MessagesCarryFileAndLevelTag) {
  SetLogLevel(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  CEPR_LOG(WARNING) << "tagged";
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[WARN logging_test.cc:"), std::string::npos);
  EXPECT_NE(err.find("tagged"), std::string::npos);
}

TEST(LoggingTest, DcheckCompiledPerBuildType) {
#ifdef NDEBUG
  CEPR_DCHECK(false);  // compiled out in release builds
  SUCCEED();
#else
  EXPECT_DEATH(CEPR_DCHECK(false), "Check failed");
#endif
}

}  // namespace
}  // namespace cepr
