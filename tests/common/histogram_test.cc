#include "common/histogram.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace cepr {
namespace {

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(100);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 100);
  EXPECT_EQ(h.max(), 100);
  EXPECT_EQ(h.mean(), 100.0);
}

TEST(HistogramTest, NegativeClampsToZero) {
  Histogram h;
  h.Record(-5);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, MeanIsExact) {
  Histogram h;
  for (int v : {10, 20, 30, 40}) h.Record(v);
  EXPECT_DOUBLE_EQ(h.mean(), 25.0);
}

TEST(HistogramTest, PercentilesAreMonotone) {
  Histogram h;
  Random rng(42);
  for (int i = 0; i < 10000; ++i) h.Record(static_cast<int64_t>(rng.Uniform(100000)));
  double prev = 0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const double v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
}

TEST(HistogramTest, PercentileApproximatesUniform) {
  Histogram h;
  for (int i = 0; i < 100000; ++i) h.Record(i);
  // Exponential buckets give ~25% relative resolution; check loose bands.
  EXPECT_NEAR(h.Percentile(50), 50000, 15000);
  EXPECT_NEAR(h.Percentile(90), 90000, 20000);
}

TEST(HistogramTest, ExtremePercentilesHitMinMax) {
  Histogram h;
  for (int v : {3, 7, 1000, 4000}) h.Record(v);
  EXPECT_EQ(h.Percentile(0), 3.0);
  EXPECT_EQ(h.Percentile(100), 4000.0);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 100; ++i) a.Record(10);
  for (int i = 0; i < 100; ++i) b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
  EXPECT_DOUBLE_EQ(a.mean(), 505.0);
}

TEST(HistogramTest, MergeWithEmptyIsNoop) {
  Histogram a;
  a.Record(5);
  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.min(), 5);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(99), 0.0);
}

TEST(HistogramTest, LargeValuesDoNotOverflowBuckets) {
  Histogram h;
  h.Record(int64_t{1} << 62);
  h.Record(1);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), int64_t{1} << 62);
  EXPECT_GE(h.Percentile(99), 1.0);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Record(1);
  EXPECT_NE(h.Summary().find("count=1"), std::string::npos);
}

TEST(HistogramTest, ToJsonCarriesSummaryStats) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  const std::string json = h.ToJson();
  EXPECT_NE(json.find("\"count\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"mean\":15"), std::string::npos) << json;
  EXPECT_NE(json.find("\"min\":10"), std::string::npos) << json;
  EXPECT_NE(json.find("\"max\":20"), std::string::npos) << json;
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(HistogramTest, EmptyToJsonIsZeros) {
  const Histogram h;
  const std::string json = h.ToJson();
  EXPECT_NE(json.find("\"count\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"mean\":0"), std::string::npos) << json;
}

}  // namespace
}  // namespace cepr
