#include "common/strings.h"

#include <gtest/gtest.h>

namespace cepr {
namespace {

TEST(SplitTest, Basic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, EmptyInput) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitTest, NoSeparator) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(JoinTest, RoundTripsSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
}

TEST(JoinTest, EmptyAndSingle) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("inner space kept"), "inner space kept");
}

TEST(CaseTest, ToLowerUpper) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("SeLeCt"), "SELECT");
  EXPECT_EQ(ToLower("a1_B2"), "a1_b2");
}

TEST(AffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("pattern", "pat"));
  EXPECT_FALSE(StartsWith("pat", "pattern"));
  EXPECT_TRUE(EndsWith("pattern", "ern"));
  EXPECT_FALSE(EndsWith("ern", "pattern"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(EqualsIgnoreCaseTest, Matches) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "ab"));
}

TEST(FormatDoubleTest, IntegralGetsDecimalPoint) {
  EXPECT_EQ(FormatDouble(42.0), "42.0");
  EXPECT_EQ(FormatDouble(-3.0), "-3.0");
}

TEST(FormatDoubleTest, FractionPreserved) {
  EXPECT_EQ(FormatDouble(2.5), "2.5");
  EXPECT_EQ(FormatDouble(0.125), "0.125");
}

TEST(FormatDoubleTest, ScientificKeptAsIs) {
  const std::string s = FormatDouble(1e20);
  EXPECT_NE(s.find('e'), std::string::npos);
}

}  // namespace
}  // namespace cepr
