#include "rank/topk.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/random.h"

namespace cepr {
namespace {

Match M(uint64_t id, double score) {
  Match m;
  m.id = id;
  m.score = score;
  return m;
}

TEST(OutranksTest, ScoreThenIdTieBreak) {
  EXPECT_TRUE(OutranksMatch(M(5, 10), M(1, 5), /*desc=*/true));
  EXPECT_FALSE(OutranksMatch(M(5, 10), M(1, 5), /*desc=*/false));
  // Equal scores: earlier id wins in both directions.
  EXPECT_TRUE(OutranksMatch(M(1, 5), M(2, 5), true));
  EXPECT_TRUE(OutranksMatch(M(1, 5), M(2, 5), false));
  EXPECT_FALSE(OutranksMatch(M(2, 5), M(1, 5), true));
}

TEST(TopKTest, KeepsBestK) {
  TopK topk(3, /*desc=*/true);
  for (int i = 0; i < 10; ++i) topk.Offer(M(i, i));
  EXPECT_EQ(topk.size(), 3u);
  const auto drained = topk.Drain();
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained[0].score, 9);
  EXPECT_EQ(drained[1].score, 8);
  EXPECT_EQ(drained[2].score, 7);
}

TEST(TopKTest, AscendingKeepsSmallest) {
  TopK topk(2, /*desc=*/false);
  for (double s : {5.0, 1.0, 3.0, 0.5}) topk.Offer(M(0, s));
  const auto drained = topk.Drain();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].score, 0.5);
  EXPECT_EQ(drained[1].score, 1.0);
}

TEST(TopKTest, OfferReportsAcceptance) {
  TopK topk(2, true);
  EXPECT_TRUE(topk.Offer(M(0, 10)));
  EXPECT_TRUE(topk.Offer(M(1, 20)));
  EXPECT_FALSE(topk.Offer(M(2, 5)));   // below both
  EXPECT_TRUE(topk.Offer(M(3, 15)));   // displaces 10
  const auto drained = topk.Drain();
  EXPECT_EQ(drained[0].score, 20);
  EXPECT_EQ(drained[1].score, 15);
}

TEST(TopKTest, ThresholdIsWorstRetained) {
  TopK topk(3, true);
  EXPECT_EQ(topk.threshold(), std::nullopt);
  topk.Offer(M(0, 10));
  topk.Offer(M(1, 30));
  topk.Offer(M(2, 20));
  EXPECT_TRUE(topk.full());
  EXPECT_EQ(topk.threshold(), 10.0);
  topk.Offer(M(3, 25));
  EXPECT_EQ(topk.threshold(), 20.0);
}

TEST(TopKTest, ThresholdEmptyIsNullEvenWithZeroK) {
  // k = 0 keeps full() true on an empty heap; the bar must still be null,
  // not a fake 0.0 an ascending pruner would treat as a real bound.
  TopK topk(0, /*desc=*/false);
  EXPECT_TRUE(topk.full());
  EXPECT_EQ(topk.threshold(), std::nullopt);
}

TEST(TopKTest, EqualScoreRejectedWhenFull) {
  // A later match with a score equal to the k-th best must not displace it.
  TopK topk(1, true);
  EXPECT_TRUE(topk.Offer(M(1, 10)));
  EXPECT_FALSE(topk.Offer(M(2, 10)));
  const auto drained = topk.Drain();
  EXPECT_EQ(drained[0].id, 1u);
}

TEST(TopKTest, ZeroKRejectsEverything) {
  TopK topk(0, true);
  EXPECT_FALSE(topk.Offer(M(0, 100)));
  EXPECT_TRUE(topk.empty());
  EXPECT_TRUE(topk.Drain().empty());
}

TEST(TopKTest, UnlimitedNeverFull) {
  TopK topk(TopK::kUnlimited, true);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(topk.Offer(M(i, i)));
  EXPECT_FALSE(topk.full());
  EXPECT_EQ(topk.size(), 1000u);
}

TEST(TopKTest, DrainEmpties) {
  TopK topk(5, true);
  topk.Offer(M(0, 1));
  EXPECT_EQ(topk.Drain().size(), 1u);
  EXPECT_TRUE(topk.empty());
  EXPECT_TRUE(topk.Drain().empty());
}

TEST(TopKTest, RankOfCountsOutrankingMatches) {
  TopK topk(5, true);
  uint64_t id = 0;
  for (double s : {10.0, 20.0, 30.0}) topk.Offer(M(id++, s));
  EXPECT_EQ(topk.RankOf(M(10, 35)), 0u);
  EXPECT_EQ(topk.RankOf(M(10, 25)), 1u);
  EXPECT_EQ(topk.RankOf(M(10, 5)), 3u);
}

TEST(TopKTest, RankOfBreaksTiesByFullOrder) {
  // Three retained matches share one score; rank under ties must follow
  // the (score, sequence, id) order Drain() uses, not score alone.
  TopK topk(5, true);
  topk.Offer(M(0, 10));
  topk.Offer(M(1, 10));
  topk.Offer(M(2, 10));
  // A new id-3 match at the same score ranks after all three...
  EXPECT_EQ(topk.RankOf(M(3, 10)), 3u);
  // ...and a retained match ranks by its own position: id 0 first, the
  // in-heap copy never counts against itself.
  EXPECT_EQ(topk.RankOf(M(0, 10)), 0u);
  EXPECT_EQ(topk.RankOf(M(1, 10)), 1u);
  EXPECT_EQ(topk.RankOf(M(2, 10)), 2u);
}

TEST(TopKTest, DrainOrderDeterministicUnderTies) {
  TopK topk(4, true);
  topk.Offer(M(3, 5));
  topk.Offer(M(1, 5));
  topk.Offer(M(2, 5));
  topk.Offer(M(0, 5));
  const auto drained = topk.Drain();
  for (size_t i = 0; i < drained.size(); ++i) EXPECT_EQ(drained[i].id, i);
}

// Property: TopK agrees with sort-then-truncate on random inputs.
class TopKPropertyTest : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(TopKPropertyTest, AgreesWithSortTruncate) {
  const auto [k, desc] = GetParam();
  Random rng(static_cast<uint64_t>(k) * 7 + desc);
  std::vector<Match> all;
  TopK topk(static_cast<size_t>(k), desc);
  for (uint64_t i = 0; i < 500; ++i) {
    const Match m = M(i, static_cast<double>(rng.Uniform(50)));  // many ties
    all.push_back(m);
    topk.Offer(m);
  }
  std::sort(all.begin(), all.end(), [desc](const Match& a, const Match& b) {
    return OutranksMatch(a, b, desc);
  });
  all.resize(static_cast<size_t>(k));
  const auto drained = topk.Drain();
  ASSERT_EQ(drained.size(), all.size());
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(drained[i].id, all[i].id) << "k=" << k << " desc=" << desc;
    EXPECT_EQ(drained[i].score, all[i].score);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TopKPropertyTest,
                         ::testing::Combine(::testing::Values(1, 5, 32, 100),
                                            ::testing::Bool()));

}  // namespace
}  // namespace cepr
