// Regression tests for the best-first lazy enumerator (rank/enumerator.h),
// focused on the threshold cut rule: a frontier entry whose score bound
// EQUALS the k-th retained score must still be expanded — the content
// tie-break can displace a retained match at the same score — while a
// strictly worse bound ends the walk (counted as a cutoff).

#include "rank/enumerator.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "engine/match_dag.h"
#include "plan/compiler.h"
#include "rank/topk.h"
#include "testing/helpers.h"

namespace cepr {
namespace {

using testing::StockSchema;
using testing::Tick;

constexpr char kQuery[] =
    "SELECT a.price, MAX(b.price) "
    "FROM Stock MATCH PATTERN SEQ(a, b+) "
    "USING SKIP_TILL_ANY_MATCH "
    "WHERE a.price < 10 AND b[i].price > 20 "
    "WITHIN 100 MILLISECONDS "
    "RANK BY MAX(b.price) DESC LIMIT 1 EMIT ON WINDOW CLOSE";

EventPtr MakeTick(Timestamp ts, double price, uint64_t sequence) {
  Event e = Tick(ts, price);
  e.set_sequence(sequence);
  return std::make_shared<const Event>(std::move(e));
}

// One single-path set per call: extend(b_event) over bottom, on a shared
// group whose closed prefix binds `a`.
LazyMatchSet SingleEventSet(const DagGroupContextPtr& ctx,
                            const std::shared_ptr<MatchDagStore>& store,
                            DagNode* bottom, const EventPtr& b_event,
                            uint64_t base_id) {
  DagNode* ext = store->NewExtend(b_event, bottom);
  return LazyMatchSet(ctx, ext, base_id, b_event->sequence(),
                      b_event->timestamp());
}

TEST(EnumeratorTest, TieAtThresholdIsExpandedNotCut) {
  auto plan = CompileQueryText(kQuery, StockSchema()).value();
  ASSERT_TRUE(MatchDagEligible(*plan));
  auto store = std::make_shared<MatchDagStore>(plan.get());

  auto ctx = std::make_shared<DagGroupContext>();
  ctx->plan = plan.get();
  ctx->store = store;
  ctx->closed_bindings.resize(2);  // a, b
  const EventPtr a_event = MakeTick(0, 5, 0);
  ctx->closed_bindings[0].push_back(a_event);
  ctx->base_aggs = AggStates(&plan->pattern.agg_specs);
  ctx->base_aggs.Accept(0, *a_event);
  ctx->first_ts = a_event->timestamp();
  ctx->first_sequence = a_event->sequence();

  DagNode* bottom = store->Bottom();
  std::vector<LazyMatchSet> sets;
  // A and B tie at score 100; A enters the frontier first (and so pops
  // first on the bound tie), but B outranks it under the full order
  // (earlier detecting sequence). C is strictly worse — the cutoff.
  sets.push_back(
      SingleEventSet(ctx, store, bottom, MakeTick(5000, 100, 5), 0));
  sets.push_back(
      SingleEventSet(ctx, store, bottom, MakeTick(3000, 100, 3), 1));
  sets.push_back(
      SingleEventSet(ctx, store, bottom, MakeTick(7000, 50, 7), 2));
  store->Unref(bottom);

  TopK topk(1, /*desc=*/true);
  uint64_t enumerated = 0;
  uint64_t cutoffs = 0;
  EnumerateLazyMatches(sets, &topk, &enumerated, &cutoffs);

  // A filled the heap (threshold 100); B's equal bound was expanded anyway
  // and displaced A; C's strictly-worse bound ended the walk unexpanded.
  EXPECT_EQ(enumerated, 2u);
  EXPECT_EQ(cutoffs, 1u);
  const std::vector<Match> top = topk.Drain();
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].last_sequence, 3u);
  EXPECT_DOUBLE_EQ(top[0].score, 100.0);

  sets.clear();  // release node references before the store dies
}

TEST(EnumeratorTest, NoThresholdEnumeratesEverything) {
  // Unlimited k: no bar ever forms, so every path materializes and no
  // cutoff is counted.
  auto plan = CompileQueryText(kQuery, StockSchema()).value();
  auto store = std::make_shared<MatchDagStore>(plan.get());

  auto ctx = std::make_shared<DagGroupContext>();
  ctx->plan = plan.get();
  ctx->store = store;
  ctx->closed_bindings.resize(2);
  const EventPtr a_event = MakeTick(0, 5, 0);
  ctx->closed_bindings[0].push_back(a_event);
  ctx->base_aggs = AggStates(&plan->pattern.agg_specs);
  ctx->base_aggs.Accept(0, *a_event);
  ctx->first_ts = a_event->timestamp();
  ctx->first_sequence = a_event->sequence();

  DagNode* bottom = store->Bottom();
  std::vector<LazyMatchSet> sets;
  sets.push_back(
      SingleEventSet(ctx, store, bottom, MakeTick(1000, 30, 1), 0));
  sets.push_back(
      SingleEventSet(ctx, store, bottom, MakeTick(2000, 40, 2), 1));
  store->Unref(bottom);

  TopK topk(TopK::kUnlimited, /*desc=*/true);
  uint64_t enumerated = 0;
  uint64_t cutoffs = 0;
  EnumerateLazyMatches(sets, &topk, &enumerated, &cutoffs);

  EXPECT_EQ(enumerated, 2u);
  EXPECT_EQ(cutoffs, 0u);
  const std::vector<Match> top = topk.Drain();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_DOUBLE_EQ(top[0].score, 40.0);
  EXPECT_DOUBLE_EQ(top[1].score, 30.0);

  sets.clear();
}

}  // namespace
}  // namespace cepr
