#include "rank/score.h"

#include <gtest/gtest.h>

#include "engine/run.h"
#include "testing/helpers.h"

namespace cepr {
namespace {

using testing::StockSchema;
using testing::Tick;

// The canonical prunable query: dip depth, DESC.
CompiledQueryPtr DipPlan() {
  return CompileQueryText(
             "SELECT a.price FROM Stock MATCH PATTERN SEQ(a, b+, c) "
             "WHERE b[i].price < a.price AND c.price > a.price "
             "RANK BY a.price - MIN(b.price) DESC LIMIT 2",
             StockSchema())
      .value();
}

TEST(ScorePrunerTest, InactiveWithoutThreshold) {
  auto plan = DipPlan();
  ScorePruner pruner(plan->score, /*desc=*/true, PruneScope::kGlobal, 0);
  ::cepr::Run run(plan.get(), 0);
  EXPECT_FALSE(pruner.ShouldPrune(run));
  EXPECT_EQ(pruner.checks(), 0u);
}

TEST(ScorePrunerTest, PrunesWhenUpperBoundCannotBeatThreshold) {
  auto plan = DipPlan();
  ScorePruner pruner(plan->score, true, PruneScope::kGlobal, 0);

  // A run with a bound at price 50: max achievable score is 50 - 1 = 49.
  ::cepr::Run run(plan.get(), 0);
  run.BeginComponent(0, std::make_shared<const Event>(Tick(0, 50)));

  pruner.SetThreshold(40.0);
  EXPECT_FALSE(pruner.ShouldPrune(run));  // 49 > 40: might still enter

  pruner.SetThreshold(49.0);
  EXPECT_TRUE(pruner.ShouldPrune(run));  // ties lose: 49 <= 49

  pruner.SetThreshold(60.0);
  EXPECT_TRUE(pruner.ShouldPrune(run));
  EXPECT_EQ(pruner.checks(), 3u);
  EXPECT_EQ(pruner.prunes(), 2u);
}

TEST(ScorePrunerTest, TightensAsKleeneAccumulates) {
  auto plan = DipPlan();
  ScorePruner pruner(plan->score, true, PruneScope::kGlobal, 0);
  pruner.SetThreshold(30.0);

  ::cepr::Run run(plan.get(), 0);
  run.BeginComponent(0, std::make_shared<const Event>(Tick(0, 100)));
  // Upper bound while b is open: 100 - 1 = 99 -> keep.
  EXPECT_FALSE(pruner.ShouldPrune(run));
  run.BeginComponent(1, std::make_shared<const Event>(Tick(1, 95)));
  EXPECT_FALSE(pruner.ShouldPrune(run));  // min can still fall to 1

  // Close b by binding c... but first check: the bound for an OPEN b stays
  // optimistic; once b closes (c binds), the score is a point.
  run.BeginComponent(2, std::make_shared<const Event>(Tick(2, 101)));
  // Score is exactly 100 - 95 = 5 <= 30: prune (nothing can improve it).
  EXPECT_TRUE(pruner.ShouldPrune(run));
}

TEST(ScorePrunerTest, AscendingDirectionUsesLowerBound) {
  auto plan = CompileQueryText(
                  "SELECT a.price FROM Stock MATCH PATTERN SEQ(a, b+) "
                  "WHERE b[i].price < a.price "
                  "RANK BY COUNT(b) ASC LIMIT 1",
                  StockSchema())
                  .value();
  ScorePruner pruner(plan->score, /*desc=*/false, PruneScope::kGlobal, 0);

  ::cepr::Run run(plan.get(), 0);
  run.BeginComponent(0, std::make_shared<const Event>(Tick(0, 100)));
  run.BeginComponent(1, std::make_shared<const Event>(Tick(1, 50)));
  run.ExtendKleene(std::make_shared<const Event>(Tick(2, 40)));
  run.ExtendKleene(std::make_shared<const Event>(Tick(3, 30)));
  // COUNT(b) is already 3 and can only grow.
  pruner.SetThreshold(4.0);
  EXPECT_FALSE(pruner.ShouldPrune(run));  // count 3 < 4 could still rank
  pruner.SetThreshold(3.0);
  EXPECT_TRUE(pruner.ShouldPrune(run));  // >= 3 can never beat the bar
}

TEST(ScorePrunerTest, ClearThresholdDeactivates) {
  auto plan = DipPlan();
  ScorePruner pruner(plan->score, true, PruneScope::kGlobal, 0);
  ::cepr::Run run(plan.get(), 0);
  run.BeginComponent(0, std::make_shared<const Event>(Tick(0, 50)));
  pruner.SetThreshold(1000.0);
  EXPECT_TRUE(pruner.ShouldPrune(run));
  pruner.ClearThreshold();
  EXPECT_FALSE(pruner.ShouldPrune(run));
}

TEST(ScorePrunerTest, MatcherIntegrationCountsPrunes) {
  // Wire a pruner with an artificially high bar into a matcher: every run
  // should be pruned at creation, so no matches survive.
  auto plan = DipPlan();
  ScorePruner pruner(plan->score, true, PruneScope::kGlobal, 0);
  pruner.SetThreshold(1e9);
  AtomicMatcherStats stats;
  uint64_t next_id = 0;
  Matcher matcher(plan, MatcherOptions{}, &pruner, &stats, &next_id);

  std::vector<Match> out;
  for (int i = 0; i < 10; ++i) {
    matcher.OnEvent(std::make_shared<const Event>(
                        Tick(i * 1000, 100.0 - i)),
                    &out);
  }
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(matcher.active_runs(), 0u);
  EXPECT_EQ(stats.runs_pruned_score.Load(), stats.runs_created.Load());
  EXPECT_GT(stats.runs_created.Load(), 0u);
}

}  // namespace
}  // namespace cepr
