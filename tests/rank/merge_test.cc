#include "rank/merge.h"

#include <gtest/gtest.h>

#include <vector>

namespace cepr {
namespace {

RankedResult MakeResult(double score, uint64_t last_sequence, uint64_t id,
                        int64_t window_id = 0) {
  RankedResult r;
  r.window_id = window_id;
  r.match.score = score;
  r.match.last_sequence = last_sequence;
  r.match.id = id;
  return r;
}

std::vector<double> Scores(const std::vector<RankedResult>& results) {
  std::vector<double> out;
  for (const auto& r : results) out.push_back(r.match.score);
  return out;
}

TEST(MergeTest, MergesSortedShardListsByScore) {
  ShardMergeOptions options;
  options.by_score = true;
  options.desc = true;
  std::vector<std::vector<RankedResult>> shards(3);
  shards[0] = {MakeResult(9.0, 1, 0), MakeResult(5.0, 4, 0)};
  shards[1] = {MakeResult(8.0, 2, 0), MakeResult(2.0, 6, 0)};
  shards[2] = {MakeResult(7.0, 3, 0)};

  const auto merged = MergeShardResults(std::move(shards), options);
  EXPECT_EQ(Scores(merged), (std::vector<double>{9, 8, 7, 5, 2}));
  for (size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].rank, i);  // ranks reassigned globally
  }
}

TEST(MergeTest, CutsToLimit) {
  ShardMergeOptions options;
  options.by_score = true;
  options.desc = true;
  options.limit = 2;
  std::vector<std::vector<RankedResult>> shards(2);
  shards[0] = {MakeResult(9.0, 1, 0), MakeResult(5.0, 4, 0)};
  shards[1] = {MakeResult(8.0, 2, 0), MakeResult(7.0, 3, 0)};

  const auto merged = MergeShardResults(std::move(shards), options);
  EXPECT_EQ(Scores(merged), (std::vector<double>{9, 8}));
}

TEST(MergeTest, AscendingDirection) {
  ShardMergeOptions options;
  options.by_score = true;
  options.desc = false;
  std::vector<std::vector<RankedResult>> shards(2);
  shards[0] = {MakeResult(1.0, 1, 0), MakeResult(6.0, 4, 0)};
  shards[1] = {MakeResult(3.0, 2, 0)};

  const auto merged = MergeShardResults(std::move(shards), options);
  EXPECT_EQ(Scores(merged), (std::vector<double>{1, 3, 6}));
}

TEST(MergeTest, EqualScoresTieBreakOnDetectionPosition) {
  ShardMergeOptions options;
  options.by_score = true;
  options.desc = true;
  std::vector<std::vector<RankedResult>> shards(2);
  // Same score everywhere: detection position (detecting event's stream
  // sequence) must decide, exactly as the serial engine's ranker does.
  shards[0] = {MakeResult(5.0, /*last_sequence=*/20, /*id=*/0)};
  shards[1] = {MakeResult(5.0, /*last_sequence=*/10, /*id=*/7)};

  const auto merged = MergeShardResults(std::move(shards), options);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].match.last_sequence, 10u);
  EXPECT_EQ(merged[1].match.last_sequence, 20u);
}

TEST(MergeTest, PassthroughMergesByDetectionOrder) {
  ShardMergeOptions options;
  options.by_score = false;  // detection-order (passthrough) semantics
  std::vector<std::vector<RankedResult>> shards(2);
  shards[0] = {MakeResult(1.0, 3, 0), MakeResult(9.0, 8, 1)};
  shards[1] = {MakeResult(4.0, 5, 0)};

  const auto merged = MergeShardResults(std::move(shards), options);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].match.last_sequence, 3u);
  EXPECT_EQ(merged[1].match.last_sequence, 5u);
  EXPECT_EQ(merged[2].match.last_sequence, 8u);
}

TEST(MergeTest, EmptyShardsAndEmptyInput) {
  ShardMergeOptions options;
  EXPECT_TRUE(MergeShardResults({}, options).empty());
  std::vector<std::vector<RankedResult>> shards(4);  // all empty
  shards[2] = {MakeResult(1.0, 1, 0)};
  const auto merged = MergeShardResults(std::move(shards), options);
  EXPECT_EQ(merged.size(), 1u);
}

TEST(DetectedBeforeTest, OrdersBySequenceThenId) {
  Match a;
  a.last_sequence = 5;
  a.id = 9;
  Match b;
  b.last_sequence = 5;
  b.id = 2;
  EXPECT_TRUE(DetectedBefore(b, a));
  EXPECT_FALSE(DetectedBefore(a, b));
  b.last_sequence = 6;
  EXPECT_TRUE(DetectedBefore(a, b));
}

}  // namespace
}  // namespace cepr
