#include "rank/ranker.h"

#include <gtest/gtest.h>

#include "testing/helpers.h"

namespace cepr {
namespace {

using testing::StockSchema;

CompiledQueryPtr Plan(const std::string& text) {
  return CompileQueryText(text, StockSchema()).value();
}

Match M(uint64_t id, double score) {
  Match m;
  m.id = id;
  m.score = score;
  return m;
}

constexpr char kBufferedQuery[] =
    "SELECT a.price FROM Stock MATCH PATTERN SEQ(a) "
    "WITHIN 1 SECONDS RANK BY a.price DESC LIMIT 2 EMIT ON WINDOW CLOSE";

TEST(RankerTest, BufferedHeapEmitsOrderedOnWindowClose) {
  Ranker ranker(Plan(kBufferedQuery), RankerPolicy::kHeap);
  std::vector<RankedResult> out;
  ranker.OnMatch(M(0, 10), 0, &out);
  ranker.OnMatch(M(1, 30), 0, &out);
  ranker.OnMatch(M(2, 20), 0, &out);
  EXPECT_TRUE(out.empty());  // buffered until the window closes

  ranker.AdvanceTo(1, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].match.score, 30);
  EXPECT_EQ(out[0].rank, 0u);
  EXPECT_EQ(out[0].window_id, 0);
  EXPECT_FALSE(out[0].provisional);
  EXPECT_EQ(out[1].match.score, 20);
  EXPECT_EQ(out[1].rank, 1u);
}

TEST(RankerTest, NaiveSortMatchesHeapOutput) {
  Ranker heap(Plan(kBufferedQuery), RankerPolicy::kHeap);
  Ranker naive(Plan(kBufferedQuery), RankerPolicy::kNaiveSort);
  std::vector<RankedResult> heap_out;
  std::vector<RankedResult> naive_out;
  for (uint64_t i = 0; i < 50; ++i) {
    const double score = static_cast<double>((i * 37) % 11);
    heap.OnMatch(M(i, score), 0, &heap_out);
    naive.OnMatch(M(i, score), 0, &naive_out);
  }
  heap.Finish(&heap_out);
  naive.Finish(&naive_out);
  ASSERT_EQ(heap_out.size(), naive_out.size());
  for (size_t i = 0; i < heap_out.size(); ++i) {
    EXPECT_EQ(heap_out[i].match.id, naive_out[i].match.id);
    EXPECT_EQ(heap_out[i].rank, naive_out[i].rank);
  }
}

TEST(RankerTest, WindowsCloseIndependently) {
  Ranker ranker(Plan(kBufferedQuery), RankerPolicy::kHeap);
  std::vector<RankedResult> out;
  ranker.OnMatch(M(0, 5), 0, &out);
  ranker.OnMatch(M(1, 50), 1, &out);  // moving to window 1 closes window 0
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].window_id, 0);
  EXPECT_EQ(out[0].match.score, 5);

  out.clear();
  ranker.Finish(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].window_id, 1);
  EXPECT_EQ(out[0].match.score, 50);
}

TEST(RankerTest, AdvanceWithoutMatchesClosesWindow) {
  Ranker ranker(Plan(kBufferedQuery), RankerPolicy::kHeap);
  std::vector<RankedResult> out;
  ranker.OnMatch(M(0, 5), 0, &out);
  ranker.AdvanceTo(3, &out);  // time passes with no matches
  ASSERT_EQ(out.size(), 1u);
  ranker.Finish(&out);
  EXPECT_EQ(out.size(), 1u);  // nothing buffered in window 3
}

TEST(RankerTest, PassthroughEmitsDetectionOrderWithLimit) {
  auto plan = Plan(
      "SELECT a.price FROM Stock MATCH PATTERN SEQ(a) "
      "WITHIN 1 SECONDS LIMIT 2 EMIT ON WINDOW CLOSE");
  Ranker ranker(plan, RankerPolicy::kPassthrough);
  std::vector<RankedResult> out;
  for (uint64_t i = 0; i < 5; ++i) ranker.OnMatch(M(i, 0), 0, &out);
  ASSERT_EQ(out.size(), 2u);  // first two, eagerly
  EXPECT_EQ(out[0].match.id, 0u);
  EXPECT_EQ(out[1].match.id, 1u);
  // New window resets the limit budget.
  ranker.OnMatch(M(7, 0), 1, &out);
  EXPECT_EQ(out.size(), 3u);
}

TEST(RankerTest, UnrankedQueryDegeneratesToPassthrough) {
  auto plan = Plan("SELECT a.price FROM Stock MATCH PATTERN SEQ(a)");
  Ranker ranker(plan, RankerPolicy::kHeap);
  EXPECT_EQ(ranker.policy(), RankerPolicy::kPassthrough);
}

TEST(RankerTest, EagerEmissionStreamsProvisionalResults) {
  auto plan = Plan(
      "SELECT a.price FROM Stock MATCH PATTERN SEQ(a) "
      "RANK BY a.price DESC LIMIT 2 EMIT ON COMPLETE");
  Ranker ranker(plan, RankerPolicy::kHeap);
  std::vector<RankedResult> out;
  ranker.OnMatch(M(0, 10), 0, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].provisional);
  EXPECT_EQ(out[0].rank, 0u);

  ranker.OnMatch(M(1, 30), 0, &out);  // better: enters at rank 0
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].rank, 0u);

  ranker.OnMatch(M(2, 5), 0, &out);  // below top-2: not emitted
  EXPECT_EQ(out.size(), 2u);

  ranker.OnMatch(M(3, 20), 0, &out);  // displaces 10, rank 1
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2].rank, 1u);

  // Finish does not re-emit in eager mode.
  ranker.Finish(&out);
  EXPECT_EQ(out.size(), 3u);
}

TEST(RankerTest, PrunerOnlyForPrunedPolicyWithPrunableScore) {
  auto plan = Plan(kBufferedQuery);
  EXPECT_EQ(Ranker(plan, RankerPolicy::kHeap).pruner(), nullptr);
  EXPECT_NE(Ranker(plan, RankerPolicy::kPruned).pruner(), nullptr);

  // Unbounded DESC score (COUNT) cannot be pruned.
  auto unbounded = Plan(
      "SELECT COUNT(b) FROM Stock MATCH PATTERN SEQ(a, b+) "
      "RANK BY COUNT(b) DESC LIMIT 2");
  EXPECT_EQ(Ranker(unbounded, RankerPolicy::kPruned).pruner(), nullptr);

  // No LIMIT: the top-k never fills, so pruning can never trigger.
  auto no_limit = Plan(
      "SELECT a.price FROM Stock MATCH PATTERN SEQ(a) RANK BY a.price DESC");
  EXPECT_EQ(Ranker(no_limit, RankerPolicy::kPruned).pruner(), nullptr);
}

TEST(RankerTest, PrunerThresholdTracksTopK) {
  auto plan = Plan(kBufferedQuery);  // LIMIT 2 DESC
  Ranker ranker(plan, RankerPolicy::kPruned);
  const ScorePruner* pruner = ranker.score_pruner();
  ASSERT_NE(pruner, nullptr);
  EXPECT_FALSE(pruner->active());

  std::vector<RankedResult> out;
  ranker.OnMatch(M(0, 10), 0, &out);
  EXPECT_FALSE(pruner->active());  // not full yet
  ranker.OnMatch(M(1, 30), 0, &out);
  EXPECT_TRUE(pruner->active());
  ranker.OnMatch(M(2, 20), 0, &out);
  EXPECT_TRUE(pruner->active());

  // Window close resets the bar.
  ranker.AdvanceTo(1, &out);
  EXPECT_FALSE(pruner->active());
}

TEST(RankerTest, MatchesSeenCountsAll) {
  Ranker ranker(Plan(kBufferedQuery), RankerPolicy::kHeap);
  std::vector<RankedResult> out;
  for (uint64_t i = 0; i < 7; ++i) ranker.OnMatch(M(i, i), 0, &out);
  EXPECT_EQ(ranker.matches_seen(), 7u);
}

}  // namespace
}  // namespace cepr
