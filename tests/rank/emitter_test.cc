#include "rank/emitter.h"

#include <gtest/gtest.h>

#include "testing/helpers.h"

namespace cepr {
namespace {

using testing::StockSchema;

Match M(uint64_t id, double score, Timestamp last_ts) {
  Match m;
  m.id = id;
  m.score = score;
  m.last_ts = last_ts;
  return m;
}

TEST(EmitterTest, TimeWindowsCloseOnEventProgress) {
  auto plan = CompileQueryText(
                  "SELECT a.price FROM Stock MATCH PATTERN SEQ(a) "
                  "WITHIN 1 SECONDS RANK BY a.price DESC LIMIT 2 "
                  "EMIT ON WINDOW CLOSE",
                  StockSchema())
                  .value();
  Emitter emitter(plan, RankerPolicy::kHeap);
  std::vector<RankedResult> out;

  // Two matches in window 0 (ts < 1s).
  emitter.OnEvent(100000, 0, {M(0, 5, 100000)}, &out);
  emitter.OnEvent(200000, 1, {M(1, 9, 200000)}, &out);
  EXPECT_TRUE(out.empty());

  // An event in window 1 with no matches closes window 0.
  emitter.OnEvent(1100000, 2, {}, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].match.score, 9);
  EXPECT_EQ(out[0].window_id, 0);

  emitter.Finish(&out);
  EXPECT_EQ(out.size(), 2u);  // window 1 held nothing
}

TEST(EmitterTest, CountWindowsUseOrdinals) {
  auto plan = CompileQueryText(
                  "SELECT a.price FROM Stock MATCH PATTERN SEQ(a) "
                  "RANK BY a.price DESC LIMIT 1 EMIT EVERY 10 EVENTS",
                  StockSchema())
                  .value();
  Emitter emitter(plan, RankerPolicy::kHeap);
  std::vector<RankedResult> out;
  for (uint64_t i = 0; i < 25; ++i) {
    emitter.OnEvent(static_cast<Timestamp>(i), i,
                    {M(i, static_cast<double>(i % 10), 0)}, &out);
  }
  emitter.Finish(&out);
  // Three windows (0-9, 10-19, 20-24), top-1 each.
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].window_id, 0);
  EXPECT_EQ(out[1].window_id, 1);
  EXPECT_EQ(out[2].window_id, 2);
  EXPECT_EQ(out[0].match.score, 9);
  EXPECT_EQ(out[2].match.score, 4);  // last partial window holds 20..24
}

TEST(EmitterTest, SingleWindowFlushesOnlyAtFinish) {
  auto plan = CompileQueryText(
                  "SELECT a.price FROM Stock MATCH PATTERN SEQ(a) "
                  "RANK BY a.price DESC LIMIT 2 EMIT ON COMPLETE",
                  StockSchema())
                  .value();
  // Use the naive-sort policy: buffered even in eager mode, so everything
  // arrives at Finish in exact order.
  Emitter emitter(plan, RankerPolicy::kNaiveSort);
  std::vector<RankedResult> out;
  emitter.OnEvent(0, 0, {M(0, 1, 0), M(1, 7, 0), M(2, 4, 0)}, &out);
  EXPECT_TRUE(out.empty());
  emitter.Finish(&out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].match.score, 7);
  EXPECT_EQ(out[1].match.score, 4);
}

TEST(EmitterTest, EagerProvisionalRanksBreakScoreTies) {
  auto plan = CompileQueryText(
                  "SELECT a.price FROM Stock MATCH PATTERN SEQ(a) "
                  "RANK BY a.price DESC LIMIT 3 EMIT ON COMPLETE",
                  StockSchema())
                  .value();
  Emitter emitter(plan, RankerPolicy::kHeap);
  std::vector<RankedResult> out;

  auto tied = [](uint64_t id, uint64_t seq) {
    Match m;
    m.id = id;
    m.score = 7.0;
    m.last_ts = static_cast<Timestamp>(seq);
    m.last_sequence = seq;
    return m;
  };

  // Three equal-score matches detected by successive events: each eager
  // emission must rank after every earlier tied match (the OutranksMatch
  // tie-break on detecting-event sequence), not all claim rank 0.
  emitter.OnEvent(0, 0, {tied(0, 0)}, &out);
  emitter.OnEvent(1, 1, {tied(1, 1)}, &out);
  emitter.OnEvent(2, 2, {tied(2, 2)}, &out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].rank, 0u);
  EXPECT_EQ(out[1].rank, 1u);
  EXPECT_EQ(out[2].rank, 2u);
  EXPECT_TRUE(out[0].provisional);

  // A strictly better match slots in at rank 0; a fourth tied match loses
  // every tie-break against a full heap and is not emitted at all.
  emitter.OnEvent(3, 3, {M(3, 9, 3)}, &out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[3].rank, 0u);
  emitter.OnEvent(4, 4, {tied(4, 4)}, &out);
  EXPECT_EQ(out.size(), 4u);
}

TEST(EmitterTest, PrunerExposedOnlyWhenEngaged) {
  auto prunable = CompileQueryText(
                      "SELECT a.price FROM Stock MATCH PATTERN SEQ(a) "
                      "RANK BY a.price DESC LIMIT 2 EMIT ON COMPLETE",
                      StockSchema())
                      .value();
  EXPECT_NE(Emitter(prunable, RankerPolicy::kPruned).pruner(), nullptr);
  EXPECT_EQ(Emitter(prunable, RankerPolicy::kHeap).pruner(), nullptr);

  auto count_window = CompileQueryText(
                          "SELECT a.price FROM Stock MATCH PATTERN SEQ(a) "
                          "RANK BY a.price DESC LIMIT 2 EMIT EVERY 5 EVENTS",
                          StockSchema())
                          .value();
  // Count windows cannot prune soundly: no pruner.
  EXPECT_EQ(Emitter(count_window, RankerPolicy::kPruned).pruner(), nullptr);
}

}  // namespace
}  // namespace cepr
