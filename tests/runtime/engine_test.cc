#include "runtime/engine.h"

#include <gtest/gtest.h>

#include "testing/helpers.h"

namespace cepr {
namespace {

using testing::Tick;

constexpr char kDdl[] =
    "CREATE STREAM Stock (symbol STRING, price FLOAT RANGE [1, 1000], "
    "volume INT RANGE [1, 10000])";

constexpr char kDipQuery[] =
    "SELECT a.price, MIN(b.price), c.price "
    "FROM Stock MATCH PATTERN SEQ(a, b+, c) "
    "WHERE b[i].price < b[i-1].price AND b[1].price < a.price "
    "  AND c.price > a.price "
    "WITHIN 10 SECONDS "
    "RANK BY a.price - MIN(b.price) DESC "
    "LIMIT 2 EMIT ON WINDOW CLOSE";

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(engine_.ExecuteDdl(kDdl).ok()); }

  Status PushPrices(const std::vector<double>& prices,
                    Timestamp step = 100 * 1000) {
    auto schema = engine_.GetSchema("Stock").value();
    Timestamp ts = 0;
    for (double p : prices) {
      CEPR_RETURN_IF_ERROR(engine_.Push(
          Event(schema, ts, {Value::String("S"), Value::Float(p), Value::Int(1)})));
      ts += step;
    }
    return Status::OK();
  }

  Engine engine_;
  CollectSink sink_;
};

TEST_F(EngineTest, DdlRegistersStream) {
  EXPECT_EQ(engine_.StreamNames(), std::vector<std::string>{"Stock"});
  EXPECT_TRUE(engine_.GetSchema("stock").ok());  // case-insensitive
  EXPECT_FALSE(engine_.GetSchema("Bond").ok());
}

TEST_F(EngineTest, DuplicateStreamRejected) {
  auto s = engine_.ExecuteDdl(kDdl);
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST_F(EngineTest, BadDdlRejected) {
  EXPECT_EQ(engine_.ExecuteDdl("CREATE STREAM Broken (").code(),
            StatusCode::kParseError);
}

TEST_F(EngineTest, EndToEndRankedQuery) {
  ASSERT_TRUE(
      engine_.RegisterQuery("dips", kDipQuery, QueryOptions{}, &sink_).ok());
  ASSERT_TRUE(PushPrices({100, 95, 90, 104, 110, 60, 115}).ok());
  engine_.Finish();

  ASSERT_EQ(sink_.results().size(), 2u);
  // Deepest dip first: 110 -> 60 (depth 50) beats 100 -> 90 (depth 10).
  EXPECT_DOUBLE_EQ(sink_.results()[0].match.score, 50.0);
  EXPECT_EQ(sink_.results()[0].rank, 0u);
  EXPECT_DOUBLE_EQ(sink_.results()[1].match.score, 10.0);
  EXPECT_EQ(sink_.results()[1].rank, 1u);
}

TEST_F(EngineTest, QueryAgainstUnknownStreamFails) {
  auto s = engine_.RegisterQuery(
      "q", "SELECT * FROM Nope MATCH PATTERN SEQ(a)", QueryOptions{}, &sink_);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST_F(EngineTest, DuplicateQueryNameRejected) {
  ASSERT_TRUE(
      engine_.RegisterQuery("q", kDipQuery, QueryOptions{}, &sink_).ok());
  EXPECT_EQ(engine_.RegisterQuery("Q", kDipQuery, QueryOptions{}, &sink_).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(EngineTest, RemoveQueryFlushesIt) {
  ASSERT_TRUE(
      engine_.RegisterQuery("q", kDipQuery, QueryOptions{}, &sink_).ok());
  ASSERT_TRUE(PushPrices({100, 90, 105}).ok());
  EXPECT_TRUE(sink_.results().empty());  // window still open
  ASSERT_TRUE(engine_.RemoveQuery("q").ok());
  EXPECT_EQ(sink_.results().size(), 1u);  // flushed on removal
  EXPECT_TRUE(engine_.QueryNames().empty());
  EXPECT_EQ(engine_.RemoveQuery("q").code(), StatusCode::kNotFound);
}

TEST_F(EngineTest, OutOfOrderEventsRejectedByDefault) {
  ASSERT_TRUE(PushPrices({10}).ok());
  auto schema = engine_.GetSchema("Stock").value();
  auto s = engine_.Push(Event(schema, -5,
                              {Value::String("S"), Value::Float(1), Value::Int(1)}));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("out-of-order"), std::string::npos);
}

TEST_F(EngineTest, OutOfOrderClampedWhenConfigured) {
  EngineOptions options;
  options.reject_out_of_order = false;
  Engine lenient(options);
  ASSERT_TRUE(lenient.ExecuteDdl(kDdl).ok());
  auto schema = lenient.GetSchema("Stock").value();
  ASSERT_TRUE(
      lenient
          .Push(Event(schema, 100,
                      {Value::String("S"), Value::Float(1), Value::Int(1)}))
          .ok());
  ASSERT_TRUE(
      lenient
          .Push(Event(schema, 50,
                      {Value::String("S"), Value::Float(2), Value::Int(1)}))
          .ok());
  EXPECT_EQ(lenient.events_ingested(), 2u);
}

TEST_F(EngineTest, EventsGetSequenceNumbers) {
  ASSERT_TRUE(
      engine_
          .RegisterQuery("all",
                         "SELECT a.price FROM Stock MATCH PATTERN SEQ(a)",
                         QueryOptions{}, &sink_)
          .ok());
  ASSERT_TRUE(PushPrices({1, 2, 3}).ok());
  engine_.Finish();
  ASSERT_EQ(sink_.results().size(), 3u);
  EXPECT_EQ(engine_.events_ingested(), 3u);
}

TEST_F(EngineTest, UnregisteredSchemaEventRejected) {
  auto other = Schema::Make("Other", {Attribute{"x", ValueType::kInt, {}}}).value();
  auto s = engine_.Push(Event(other, 0, {Value::Int(1)}));
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST_F(EngineTest, ArityMismatchRejected) {
  auto schema = engine_.GetSchema("Stock").value();
  auto s = engine_.Push(Event(schema, 0, {Value::String("S")}));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(EngineTest, MultipleQueriesShareTheStream) {
  CollectSink sink2;
  ASSERT_TRUE(
      engine_.RegisterQuery("dips", kDipQuery, QueryOptions{}, &sink_).ok());
  ASSERT_TRUE(engine_
                  .RegisterQuery("spikes",
                                 "SELECT a.price FROM Stock MATCH PATTERN "
                                 "SEQ(a) WHERE a.price > 100",
                                 QueryOptions{}, &sink2)
                  .ok());
  ASSERT_TRUE(PushPrices({100, 90, 105, 110}).ok());
  engine_.Finish();
  EXPECT_EQ(sink_.results().size(), 1u);   // one dip
  EXPECT_EQ(sink2.results().size(), 2u);   // 105 and 110
}

TEST_F(EngineTest, MetricsReflectActivity) {
  ASSERT_TRUE(
      engine_.RegisterQuery("dips", kDipQuery, QueryOptions{}, &sink_).ok());
  ASSERT_TRUE(PushPrices({100, 90, 105}).ok());
  engine_.Finish();
  const QueryMetrics m = engine_.GetQuery("dips").value()->metrics();
  EXPECT_EQ(m.events, 3u);
  EXPECT_EQ(m.matches, 1u);
  EXPECT_EQ(m.results, 1u);
  EXPECT_EQ(m.event_processing_ns.count(), 3u);
  EXPECT_GT(m.matcher.runs_created, 0u);
  EXPECT_NE(m.ToString().find("events=3"), std::string::npos);
}

TEST_F(EngineTest, NullSinkAllowed) {
  ASSERT_TRUE(
      engine_.RegisterQuery("drop", kDipQuery, QueryOptions{}, nullptr).ok());
  EXPECT_TRUE(PushPrices({100, 90, 105}).ok());
  engine_.Finish();
}

// Batch with an out-of-order event at index 2 (ts regresses below the
// watermark set by index 1): the canonical mid-batch failure.
std::vector<Event> BatchWithBadThird() {
  std::vector<Event> batch;
  batch.push_back(Tick(1000, 100));
  batch.push_back(Tick(2000, 90));
  batch.push_back(Tick(500, 105));  // regression: fails validation
  batch.push_back(Tick(3000, 110));
  return batch;
}

TEST(EnginePushAllTest, FailFastNamesFailingIndexAndKeepsPrefix) {
  Engine engine;  // kFailFast is the default
  ASSERT_TRUE(engine.RegisterSchema(testing::StockSchema()).ok());
  const Status s = engine.PushAll(BatchWithBadThird());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("index 2 of 4"), std::string::npos)
      << s.ToString();
  EXPECT_EQ(engine.events_ingested(), 2u) << "prefix before the failure stays";
  EXPECT_EQ(engine.events_quarantined(), 0u);
  // The engine is still usable: the watermark is at index 1's timestamp.
  EXPECT_TRUE(engine.Push(Tick(2500, 120)).ok());
  engine.Finish();
}

TEST(EnginePushAllTest, SkipAndCountSkipsBadEventsAndContinuesBatch) {
  EngineOptions engine_options;
  engine_options.fault_policy = FaultPolicy::kSkipAndCount;
  Engine engine(engine_options);
  ASSERT_TRUE(engine.RegisterSchema(testing::StockSchema()).ok());
  const Status s = engine.PushAll(BatchWithBadThird());
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(engine.events_ingested(), 3u) << "good suffix must be ingested";
  EXPECT_EQ(engine.events_quarantined(), 1u);
  engine.Finish();
}

}  // namespace
}  // namespace cepr
