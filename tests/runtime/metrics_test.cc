// Shape tests for the metrics snapshot types and their JSON wire format
// (the contract examples/monitor and external pollers consume).

#include "runtime/metrics.h"

#include <gtest/gtest.h>

#include "runtime/engine.h"
#include "testing/helpers.h"

namespace cepr {
namespace {

using testing::StockSchema;
using testing::Tick;

// Every '{' and '[' must close; strings must not leak raw quotes. A cheap
// structural check that keeps the format honest without a JSON parser.
void ExpectBalancedJson(const std::string& json) {
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    ASSERT_GE(braces, 0) << json;
    ASSERT_GE(brackets, 0) << json;
  }
  EXPECT_FALSE(in_string) << json;
  EXPECT_EQ(braces, 0) << json;
  EXPECT_EQ(brackets, 0) << json;
}

TEST(MetricsJsonTest, ShardStatsFields) {
  ShardStats s;
  s.events = 7;
  s.queue_high_water = 3;
  const std::string json = s.ToJson();
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"events\":7"), std::string::npos);
  EXPECT_NE(json.find("\"queue_high_water\":3"), std::string::npos);
  EXPECT_NE(json.find("\"enqueue_stalls\":0"), std::string::npos);
}

TEST(MetricsJsonTest, MergeStatsFields) {
  MergeStats m;
  m.windows_merged = 2;
  m.results_emitted = 5;
  EXPECT_EQ(m.ToJson(),
            "{\"windows_merged\":2,\"results_emitted\":5}");
}

TEST(MetricsJsonTest, SharingStatsCarriesHotPathCounters) {
  SharingStats s;
  s.batch_scan_events = 4;
  s.bitmap_hits = 9;
  s.bytecode_compiled_preds = 6;
  const std::string json = s.ToJson();
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"batch_scan_events\":4"), std::string::npos);
  EXPECT_NE(json.find("\"bitmap_hits\":9"), std::string::npos);
  EXPECT_NE(json.find("\"bytecode_compiled_preds\":6"), std::string::npos);
  EXPECT_NE(s.ToString().find("bytecode_compiled_preds=6"),
            std::string::npos);
}

TEST(MetricsJsonTest, QueryMetricsNestsHistograms) {
  QueryMetrics m;
  m.events = 4;
  m.event_processing_ns.Record(1000);
  const std::string json = m.ToJson();
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"matcher\":{"), std::string::npos);
  EXPECT_NE(json.find("\"processing_ns\":{\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"emission_delay_us\":{\"count\":0"),
            std::string::npos);
}

TEST(MetricsJsonTest, SnapshotEscapesQueryNames) {
  MetricsSnapshot snap;
  snap.queries.push_back({"evil\"name\\with\ncontrol\x01", QueryMetrics{}});
  const std::string json = snap.ToJson();
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("evil\\\"name\\\\with\\ncontrol\\u0001"),
            std::string::npos)
      << json;
}

TEST(MetricsJsonTest, MetricsCellSnapshotReadsCounters) {
  MetricsCell cell;
  cell.events.Add(10);
  cell.matches.Increment();
  cell.queue_high_water.Observe(5);
  cell.queue_high_water.Observe(3);  // max keeps 5
  cell.enqueue_stalls.Increment();
  const ShardStats s = cell.Snapshot();
  EXPECT_EQ(s.events, 10u);
  EXPECT_EQ(s.matches, 1u);
  EXPECT_EQ(s.queue_high_water, 5u);
  EXPECT_EQ(s.enqueue_stalls, 1u);
}

class EngineSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(engine_.RegisterSchema(StockSchema()).ok());
    ASSERT_TRUE(engine_
                    .RegisterQuery("rise",
                                   "SELECT a.price, b.price FROM Stock "
                                   "MATCH PATTERN SEQ(a, b) "
                                   "PARTITION BY symbol "
                                   "WHERE b.price > a.price "
                                   "WITHIN 10 SECONDS "
                                   "RANK BY b.price - a.price DESC "
                                   "LIMIT 5 EMIT ON WINDOW CLOSE",
                                   QueryOptions{}, &sink_)
                    .ok());
  }

  Engine engine_;
  CollectSink sink_;
};

TEST_F(EngineSnapshotTest, SerialSnapshotAggregatesQueries) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(engine_.Push(Tick(i * 1000, 10.0 + (i % 7), 1, "IBM")).ok());
  }
  engine_.Finish();

  const MetricsSnapshot snap = engine_.Snapshot();
  EXPECT_EQ(snap.events_ingested, 50u);
  EXPECT_EQ(snap.num_shards, 1u);
  ASSERT_EQ(snap.queries.size(), 1u);
  EXPECT_EQ(snap.queries[0].name, "rise");
  EXPECT_EQ(snap.queries[0].metrics.events, 50u);
  EXPECT_EQ(snap.queries[0].metrics.results, sink_.results().size());
  EXPECT_TRUE(snap.shards.empty());

  // GetQueryMetrics is the same data through the narrow door.
  const QueryMetrics m = engine_.GetQueryMetrics("rise").value();
  EXPECT_EQ(m.events, 50u);
  EXPECT_EQ(m.matches, snap.queries[0].metrics.matches);
  EXPECT_FALSE(engine_.GetQueryMetrics("nope").ok());

  const std::string json = snap.ToJson();
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"events_ingested\":50"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rise\""), std::string::npos);
  EXPECT_NE(snap.ToString().find("query rise"), std::string::npos);
}

}  // namespace
}  // namespace cepr
