#include "runtime/reorder.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "testing/helpers.h"

namespace cepr {
namespace {

using testing::Tick;

// Offers ticks at the given timestamps (price = ts so events are
// distinguishable) and returns the released timestamps in release order.
std::vector<Timestamp> OfferAll(ReorderBuffer* buffer,
                                const std::vector<Timestamp>& timestamps,
                                std::vector<ReorderBuffer::Verdict>* verdicts =
                                    nullptr) {
  std::vector<Event> released;
  for (const Timestamp ts : timestamps) {
    const auto verdict =
        buffer->Offer(Tick(ts, static_cast<double>(ts % 1000 + 1)), &released);
    if (verdicts != nullptr) verdicts->push_back(verdict);
  }
  std::vector<Timestamp> out;
  out.reserve(released.size());
  for (const Event& e : released) out.push_back(e.timestamp());
  return out;
}

std::vector<Timestamp> FlushAll(ReorderBuffer* buffer) {
  std::vector<Event> released;
  buffer->Flush(&released);
  std::vector<Timestamp> out;
  out.reserve(released.size());
  for (const Event& e : released) out.push_back(e.timestamp());
  return out;
}

TEST(ReorderBufferTest, ZeroLatenessIsPassThrough) {
  ReorderBuffer buffer;  // max_lateness 0, kReject
  std::vector<ReorderBuffer::Verdict> verdicts;
  const auto released = OfferAll(&buffer, {100, 200, 300}, &verdicts);
  EXPECT_EQ(released, (std::vector<Timestamp>{100, 200, 300}));
  EXPECT_EQ(buffer.resident(), 0u);
  for (const auto v : verdicts) {
    EXPECT_EQ(v, ReorderBuffer::Verdict::kAccepted);
  }
  EXPECT_EQ(buffer.watermark(), 300);
}

TEST(ReorderBufferTest, ZeroLatenessRejectsRegression) {
  ReorderBuffer buffer;
  std::vector<Event> released;
  ASSERT_EQ(buffer.Offer(Tick(200, 1), &released),
            ReorderBuffer::Verdict::kAccepted);
  EXPECT_EQ(buffer.Offer(Tick(100, 1), &released),
            ReorderBuffer::Verdict::kLateRejected);
  // Equal timestamps are not a regression.
  EXPECT_EQ(buffer.Offer(Tick(200, 1), &released),
            ReorderBuffer::Verdict::kAccepted);
  const ReorderStats stats = buffer.stats();
  EXPECT_EQ(stats.events_reordered, 0u);
  EXPECT_EQ(stats.events_late_dropped, 0u);
}

TEST(ReorderBufferTest, ReordersWithinBound) {
  ReorderBuffer buffer(ReorderConfig{100, LatePolicy::kReject});
  // 300 arrives before 250: 250 is within the bound (watermark 200), so it
  // is reordered into place; only ts <= watermark releases.
  std::vector<Timestamp> out = OfferAll(&buffer, {100, 300, 250});
  EXPECT_EQ(out, (std::vector<Timestamp>{100}));
  EXPECT_EQ(buffer.resident(), 2u);  // 250 and 300 held (watermark 200)
  out = OfferAll(&buffer, {400});  // watermark 300: 250 and 300 release
  EXPECT_EQ(out, (std::vector<Timestamp>{250, 300}));
  EXPECT_EQ(buffer.resident(), 1u);  // 400 held
  EXPECT_EQ(buffer.stats().events_reordered, 1u);
  EXPECT_EQ(buffer.stats().reorder_buffer_peak, 3u);
}

TEST(ReorderBufferTest, EqualTimestampsReleaseInArrivalOrder) {
  ReorderBuffer buffer(ReorderConfig{50, LatePolicy::kReject});
  std::vector<Event> released;
  ASSERT_EQ(buffer.Offer(Tick(100, 1.0), &released),
            ReorderBuffer::Verdict::kAccepted);
  ASSERT_EQ(buffer.Offer(Tick(100, 2.0), &released),
            ReorderBuffer::Verdict::kAccepted);
  ASSERT_EQ(buffer.Offer(Tick(100, 3.0), &released),
            ReorderBuffer::Verdict::kAccepted);
  buffer.Flush(&released);
  ASSERT_EQ(released.size(), 3u);
  EXPECT_EQ(released[0].values()[1].AsFloat(), 1.0);
  EXPECT_EQ(released[1].values()[1].AsFloat(), 2.0);
  EXPECT_EQ(released[2].values()[1].AsFloat(), 3.0);
}

TEST(ReorderBufferTest, LateUnderRejectLeavesStateUntouched) {
  ReorderBuffer buffer(ReorderConfig{10, LatePolicy::kReject});
  std::vector<Event> released;
  ASSERT_EQ(buffer.Offer(Tick(1000, 1), &released),
            ReorderBuffer::Verdict::kAccepted);
  const size_t resident_before = buffer.resident();
  EXPECT_EQ(buffer.Offer(Tick(100, 1), &released),
            ReorderBuffer::Verdict::kLateRejected);
  EXPECT_EQ(buffer.resident(), resident_before);
  EXPECT_EQ(buffer.high_ts(), 1000);
  EXPECT_EQ(buffer.stats().events_late_dropped, 0u);
  EXPECT_EQ(buffer.stats().events_clamped, 0u);
}

TEST(ReorderBufferTest, LateUnderDropIsCountedNotMutated) {
  ReorderBuffer buffer(ReorderConfig{10, LatePolicy::kDropAndCount});
  std::vector<Event> released;
  ASSERT_EQ(buffer.Offer(Tick(1000, 1), &released),
            ReorderBuffer::Verdict::kAccepted);
  EXPECT_EQ(buffer.Offer(Tick(100, 1), &released),
            ReorderBuffer::Verdict::kLateDropped);
  EXPECT_EQ(buffer.stats().events_late_dropped, 1u);
  // Nothing extra released and nothing resident beyond the first event.
  buffer.Flush(&released);
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].timestamp(), 1000);
}

TEST(ReorderBufferTest, LateUnderClampRewritesToWatermark) {
  ReorderBuffer buffer(ReorderConfig{10, LatePolicy::kClamp});
  std::vector<Event> released;
  ASSERT_EQ(buffer.Offer(Tick(1000, 1), &released),
            ReorderBuffer::Verdict::kAccepted);
  ASSERT_EQ(buffer.Offer(Tick(100, 1), &released),
            ReorderBuffer::Verdict::kAccepted);
  EXPECT_EQ(buffer.stats().events_clamped, 1u);
  buffer.Flush(&released);
  ASSERT_EQ(released.size(), 2u);
  EXPECT_EQ(released[0].timestamp(), 990);   // clamped to watermark
  EXPECT_EQ(released[1].timestamp(), 1000);
}

TEST(ReorderBufferTest, FlushAdvancesFrontier) {
  ReorderBuffer buffer(ReorderConfig{1000, LatePolicy::kReject});
  std::vector<Event> released;
  ASSERT_EQ(buffer.Offer(Tick(500, 1), &released),
            ReorderBuffer::Verdict::kAccepted);
  EXPECT_EQ(FlushAll(&buffer), (std::vector<Timestamp>{500}));
  // The flush released ts 500, so an arrival older than that is now late
  // even though it is within the lateness bound of high_ts.
  EXPECT_EQ(buffer.Offer(Tick(400, 1), &released),
            ReorderBuffer::Verdict::kLateRejected);
  EXPECT_EQ(buffer.Offer(Tick(500, 1), &released),
            ReorderBuffer::Verdict::kAccepted);
}

TEST(ReorderBufferTest, ConfigAndPolicyNames) {
  EXPECT_STREQ(LatePolicyToString(LatePolicy::kReject), "Reject");
  EXPECT_STREQ(LatePolicyToString(LatePolicy::kDropAndCount), "DropAndCount");
  EXPECT_STREQ(LatePolicyToString(LatePolicy::kClamp), "Clamp");
  ReorderBuffer buffer;
  EXPECT_EQ(buffer.config().max_lateness_micros, 0);
  buffer.set_config(ReorderConfig{42, LatePolicy::kDropAndCount});
  EXPECT_EQ(buffer.config().max_lateness_micros, 42);
  EXPECT_EQ(buffer.config().late_policy, LatePolicy::kDropAndCount);
}

TEST(ReorderBufferTest, StatsAccumulateTakesMaxOfPeaks) {
  ReorderStats a;
  a.events_reordered = 3;
  a.reorder_buffer_peak = 10;
  ReorderStats b;
  b.events_reordered = 2;
  b.events_late_dropped = 1;
  b.reorder_buffer_peak = 7;
  a.Accumulate(b);
  EXPECT_EQ(a.events_reordered, 5u);
  EXPECT_EQ(a.events_late_dropped, 1u);
  EXPECT_EQ(a.reorder_buffer_peak, 10u);
}

// Property: any arrival order whose displacement stays within the bound
// releases the exact sorted sequence, stably by arrival on ties.
TEST(ReorderBufferTest, ShuffleWithinBoundReleasesSorted) {
  Random rng(20260805);
  for (int trial = 0; trial < 20; ++trial) {
    const Timestamp bound = 10 + static_cast<Timestamp>(rng.Uniform(90));
    // Strictly increasing timestamps, then block-shuffled within spans
    // no larger than the bound so no event can miss it.
    std::vector<Timestamp> timestamps;
    Timestamp ts = 0;
    for (int i = 0; i < 500; ++i) {
      ts += 1 + static_cast<Timestamp>(rng.Uniform(3));
      timestamps.push_back(ts);
    }
    std::vector<Timestamp> sorted = timestamps;
    for (size_t lo = 0; lo < timestamps.size();) {
      size_t hi = lo;
      while (hi + 1 < timestamps.size() &&
             timestamps[hi + 1] - timestamps[lo] <= bound) {
        ++hi;
      }
      for (size_t i = hi; i > lo; --i) {
        std::swap(timestamps[i],
                  timestamps[lo + rng.Uniform(static_cast<uint64_t>(
                                 i - lo + 1))]);
      }
      lo = hi + 1;
    }

    ReorderBuffer buffer(ReorderConfig{bound, LatePolicy::kReject});
    std::vector<ReorderBuffer::Verdict> verdicts;
    std::vector<Timestamp> released = OfferAll(&buffer, timestamps, &verdicts);
    for (const auto v : verdicts) {
      ASSERT_EQ(v, ReorderBuffer::Verdict::kAccepted) << "trial " << trial;
    }
    const std::vector<Timestamp> tail = FlushAll(&buffer);
    released.insert(released.end(), tail.begin(), tail.end());
    EXPECT_EQ(released, sorted) << "trial " << trial << " bound " << bound;
  }
}

}  // namespace
}  // namespace cepr
