#include "runtime/sink.h"

#include <sstream>

#include <gtest/gtest.h>

namespace cepr {
namespace {

RankedResult SampleResult() {
  RankedResult r;
  r.window_id = 2;
  r.rank = 0;
  r.provisional = false;
  r.match.id = 5;
  r.match.score = 3.25;
  r.match.row = {Value::Float(42.0), Value::String("IBM")};
  return r;
}

TEST(CollectSinkTest, BuffersAndClears) {
  CollectSink sink;
  sink.OnResult(SampleResult());
  sink.OnResult(SampleResult());
  EXPECT_EQ(sink.results().size(), 2u);
  EXPECT_EQ(sink.results()[0].match.id, 5u);
  sink.Clear();
  EXPECT_TRUE(sink.results().empty());
}

TEST(CallbackSinkTest, ForwardsEachResult) {
  int calls = 0;
  double last_score = 0;
  CallbackSink sink([&](const RankedResult& r) {
    ++calls;
    last_score = r.match.score;
  });
  sink.OnResult(SampleResult());
  EXPECT_EQ(calls, 1);
  EXPECT_DOUBLE_EQ(last_score, 3.25);
}

TEST(NullSinkTest, CountsSilently) {
  NullSink sink;
  for (int i = 0; i < 7; ++i) sink.OnResult(SampleResult());
  EXPECT_EQ(sink.count(), 7u);
}

TEST(PrintSinkTest, FormatsRankWindowAndColumns) {
  std::ostringstream os;
  PrintSink sink(os, {"price", "symbol"}, "myquery");
  sink.OnResult(SampleResult());
  const std::string line = os.str();
  EXPECT_NE(line.find("[myquery]"), std::string::npos);
  EXPECT_NE(line.find("w2"), std::string::npos);
  EXPECT_NE(line.find("#1"), std::string::npos);
  EXPECT_NE(line.find("score=3.25"), std::string::npos);
  EXPECT_NE(line.find("price=42.0"), std::string::npos);
  EXPECT_NE(line.find("symbol='IBM'"), std::string::npos);
}

TEST(PrintSinkTest, ProvisionalResultsFlagged) {
  std::ostringstream os;
  PrintSink sink(os, {});
  RankedResult r = SampleResult();
  r.provisional = true;
  sink.OnResult(r);
  EXPECT_NE(os.str().find("#1?"), std::string::npos);
}

TEST(PrintSinkTest, MissingColumnNamesStillPrintValues) {
  std::ostringstream os;
  PrintSink sink(os, {"only_one"});
  sink.OnResult(SampleResult());  // two row values, one name
  EXPECT_NE(os.str().find("only_one=42.0"), std::string::npos);
  EXPECT_NE(os.str().find("'IBM'"), std::string::npos);
}

}  // namespace
}  // namespace cepr
