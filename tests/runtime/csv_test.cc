#include "runtime/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "testing/helpers.h"

namespace cepr {
namespace {

using testing::StockSchema;
using testing::Tick;

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "cepr_csv_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(CsvTest, EventsRoundTrip) {
  std::vector<Event> events;
  events.push_back(Tick(1000, 42.5, 7, "IBM"));
  Event tagged = Tick(2000, 10.0, 8, "MSFT");
  tagged.set_type_tag("Buy");
  events.push_back(tagged);

  ASSERT_TRUE(WriteEventsCsv(path_, events).ok());
  auto readback = ReadEventsCsv(path_, StockSchema());
  ASSERT_TRUE(readback.ok()) << readback.status().ToString();
  ASSERT_EQ(readback->size(), 2u);
  EXPECT_EQ((*readback)[0].timestamp(), 1000);
  EXPECT_EQ((*readback)[0].value(0), Value::String("IBM"));
  EXPECT_EQ((*readback)[0].value(1), Value::Float(42.5));
  EXPECT_EQ((*readback)[0].value(2), Value::Int(7));
  EXPECT_EQ((*readback)[1].type_tag(), "Buy");
}

TEST_F(CsvTest, QuotedCellsRoundTrip) {
  std::vector<Event> events;
  events.push_back(Tick(0, 1.0, 1, "has,comma"));
  events.push_back(Tick(1, 2.0, 2, "has\"quote"));
  ASSERT_TRUE(WriteEventsCsv(path_, events).ok());
  auto readback = ReadEventsCsv(path_, StockSchema());
  ASSERT_TRUE(readback.ok()) << readback.status().ToString();
  EXPECT_EQ((*readback)[0].value(0), Value::String("has,comma"));
  EXPECT_EQ((*readback)[1].value(0), Value::String("has\"quote"));
}

TEST_F(CsvTest, EmbeddedNewlineRoundTrip) {
  // The writer quotes cells containing '\n'; the reader must continue the
  // record across physical lines instead of failing on the fragment.
  std::vector<Event> events;
  events.push_back(Tick(0, 1.0, 1, "line one\nline two"));
  events.push_back(Tick(1, 2.0, 2, "a\nb\nc"));
  events.push_back(Tick(2, 3.0, 3, "mix,\"of\nall\" three"));
  ASSERT_TRUE(WriteEventsCsv(path_, events).ok());
  auto readback = ReadEventsCsv(path_, StockSchema());
  ASSERT_TRUE(readback.ok()) << readback.status().ToString();
  ASSERT_EQ(readback->size(), 3u);
  EXPECT_EQ((*readback)[0].value(0), Value::String("line one\nline two"));
  EXPECT_EQ((*readback)[1].value(0), Value::String("a\nb\nc"));
  EXPECT_EQ((*readback)[2].value(0), Value::String("mix,\"of\nall\" three"));
  EXPECT_EQ((*readback)[2].timestamp(), 2);
}

TEST_F(CsvTest, MultiLineRecordErrorsReportFirstLine) {
  std::ofstream out(path_);
  out << "ts,type,symbol,price,volume\n";
  out << "5,,\"two\nlines\",notanumber,3\n";
  out.close();
  auto readback = ReadEventsCsv(path_, StockSchema());
  ASSERT_FALSE(readback.ok());
  EXPECT_NE(readback.status().message().find("line 2"), std::string::npos)
      << readback.status().message();
}

TEST_F(CsvTest, UnterminatedQuoteRejected) {
  std::ofstream out(path_);
  out << "ts,type,symbol,price,volume\n";
  out << "5,,\"never closed,1.0,3\n";
  out.close();
  auto readback = ReadEventsCsv(path_, StockSchema());
  ASSERT_FALSE(readback.ok());
  EXPECT_NE(readback.status().message().find("unterminated"), std::string::npos)
      << readback.status().message();
}

TEST_F(CsvTest, IntOverflowRejected) {
  std::ofstream out(path_);
  out << "ts,type,symbol,price,volume\n";
  out << "5,,IBM,1.0,99999999999999999999999\n";  // > INT64_MAX
  out.close();
  auto readback = ReadEventsCsv(path_, StockSchema());
  ASSERT_FALSE(readback.ok());
  EXPECT_EQ(readback.status().code(), StatusCode::kIoError);
  EXPECT_NE(readback.status().message().find("out of range"), std::string::npos)
      << readback.status().message();
}

TEST_F(CsvTest, FloatOverflowRejected) {
  std::ofstream out(path_);
  out << "ts,type,symbol,price,volume\n";
  out << "5,,IBM,1e999,3\n";  // > DBL_MAX
  out.close();
  auto readback = ReadEventsCsv(path_, StockSchema());
  ASSERT_FALSE(readback.ok());
  EXPECT_NE(readback.status().message().find("out of range"), std::string::npos)
      << readback.status().message();
}

TEST_F(CsvTest, TimestampOverflowRejected) {
  std::ofstream out(path_);
  out << "ts,type,symbol,price,volume\n";
  out << "99999999999999999999999,,IBM,1.0,3\n";
  out.close();
  auto readback = ReadEventsCsv(path_, StockSchema());
  ASSERT_FALSE(readback.ok());
  EXPECT_NE(readback.status().message().find("timestamp out of range"),
            std::string::npos)
      << readback.status().message();
}

TEST_F(CsvTest, EmptyNumericCellBecomesNull) {
  std::ofstream out(path_);
  out << "ts,type,symbol,price,volume\n";
  out << "5,,IBM,,3\n";
  out.close();
  auto readback = ReadEventsCsv(path_, StockSchema());
  ASSERT_TRUE(readback.ok()) << readback.status().ToString();
  EXPECT_TRUE((*readback)[0].value(1).is_null());
  EXPECT_EQ((*readback)[0].value(2), Value::Int(3));
}

TEST_F(CsvTest, BadCellsReportLineNumbers) {
  std::ofstream out(path_);
  out << "ts,type,symbol,price,volume\n";
  out << "5,,IBM,notanumber,3\n";
  out.close();
  auto readback = ReadEventsCsv(path_, StockSchema());
  ASSERT_FALSE(readback.ok());
  EXPECT_NE(readback.status().message().find("line 2"), std::string::npos);
}

TEST_F(CsvTest, ArityMismatchRejected) {
  std::ofstream out(path_);
  out << "ts,type,symbol,price,volume\n";
  out << "5,,IBM,1.0\n";
  out.close();
  EXPECT_FALSE(ReadEventsCsv(path_, StockSchema()).ok());
}

TEST_F(CsvTest, MissingHeaderRejected) {
  std::ofstream out(path_);
  out << "5,,IBM,1.0,3\n";
  out.close();
  EXPECT_FALSE(ReadEventsCsv(path_, StockSchema()).ok());
}

TEST_F(CsvTest, MissingFileReported) {
  EXPECT_EQ(ReadEventsCsv("/nonexistent/nope.csv", StockSchema()).status().code(),
            StatusCode::kIoError);
}

TEST_F(CsvTest, SkipAndCountSkipsBadRecordsWithLineAttribution) {
  std::ofstream out(path_);
  out << "ts,type,symbol,price,volume\n";   // line 1
  out << "1000,,IBM,10.5,3\n";              // line 2: good
  out << "2000,,IBM,extra,cell,oops,7\n";   // line 3: cell-count mismatch
  out << "3000,,IBM,notafloat,4\n";         // line 4: bad FLOAT cell
  out << "4000,,MSFT,20.0,5\n";             // line 5: good
  out.close();

  CsvReadOptions options;
  options.fault_policy = FaultPolicy::kSkipAndCount;
  CsvReadStats stats;
  auto readback = ReadEventsCsv(path_, StockSchema(), options, &stats);
  ASSERT_TRUE(readback.ok()) << readback.status().ToString();
  ASSERT_EQ(readback->size(), 2u);
  EXPECT_EQ((*readback)[0].timestamp(), 1000);
  EXPECT_EQ((*readback)[1].timestamp(), 4000);
  EXPECT_EQ(stats.records_read, 2u);
  EXPECT_EQ(stats.records_skipped, 2u);
  ASSERT_EQ(stats.skipped.size(), 2u);
  EXPECT_EQ(stats.skipped[0].line, 3);
  EXPECT_EQ(stats.skipped[1].line, 4);
  EXPECT_FALSE(stats.skipped[0].error.empty());

  // The same file under the default policy still fails fast, at line 3.
  auto strict = ReadEventsCsv(path_, StockSchema());
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().message().find("line 3"), std::string::npos);
}

TEST_F(CsvTest, SkipAndCountKeepsStructuralErrorsFatal) {
  std::ofstream out(path_);
  out << "ts,type,symbol,price,volume\n";
  out << "1000,,IBM,10.5,3\n";
  out << "2000,,\"never closed,1.0,2\n";  // unterminated quote at EOF
  out.close();
  CsvReadOptions options;
  options.fault_policy = FaultPolicy::kSkipAndCount;
  EXPECT_FALSE(ReadEventsCsv(path_, StockSchema(), options, nullptr).ok())
      << "a broken framing cannot be skipped past";
}

TEST_F(CsvTest, InjectedBadRecordsSkipDeterministically) {
  std::ofstream out(path_);
  out << "ts,type,symbol,price,volume\n";
  for (int i = 0; i < 10; ++i) {  // data lines 2..11
    out << i * 1000 << ",,IBM,1.0,1\n";
  }
  out.close();

  FaultInjector injector(77);
  injector.ArmKeys(fault_points::kCsvBadRecord, {3, 7});
  CsvReadOptions options;
  options.fault_policy = FaultPolicy::kSkipAndCount;
  options.fault_injector = &injector;

  for (int round = 0; round < 2; ++round) {  // identical on replay
    CsvReadStats stats;
    auto readback = ReadEventsCsv(path_, StockSchema(), options, &stats);
    ASSERT_TRUE(readback.ok()) << readback.status().ToString();
    EXPECT_EQ(readback->size(), 8u);
    EXPECT_EQ(stats.records_skipped, 2u);
    ASSERT_EQ(stats.skipped.size(), 2u);
    EXPECT_EQ(stats.skipped[0].line, 3);
    EXPECT_EQ(stats.skipped[1].line, 7);
  }

  // Under kFailFast the first injected record aborts the read.
  options.fault_policy = FaultPolicy::kFailFast;
  auto strict = ReadEventsCsv(path_, StockSchema(), options, nullptr);
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().message().find("injected"), std::string::npos);
}

TEST_F(CsvTest, ResultSinkWritesRows) {
  CsvResultSink sink(path_, {"price", "depth"});
  ASSERT_TRUE(sink.status().ok());
  RankedResult r;
  r.window_id = 3;
  r.rank = 1;
  r.provisional = true;
  r.match.id = 9;
  r.match.first_ts = 100;
  r.match.last_ts = 200;
  r.match.score = 2.5;
  r.match.row = {Value::Float(42.0), Value::Int(7)};
  sink.OnResult(r);

  // Flush by destroying... CsvResultSink flushes via ofstream dtor; copy
  // semantics: read after scope.
  {
    CsvResultSink scoped(path_, {"price", "depth"});
    scoped.OnResult(r);
  }
  std::ifstream in(path_);
  std::string header;
  std::string line;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(header, "window,rank,provisional,score,first_ts,last_ts,price,depth");
  EXPECT_EQ(line, "3,1,1,2.5,100,200,42.0,7");
}

}  // namespace
}  // namespace cepr
