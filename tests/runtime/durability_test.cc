// Durability-layer unit suite: Finish()/Flush() idempotence on both
// engines (a crashed caller may retry either), snapshot round-trip
// basics, and the torn-file fuzz — seeded truncations and bit flips of
// snapshot and WAL files must surface as clean kCorrupt / version /
// kind diagnostics naming the file (and offset where known), never as a
// crash, a hang, or a sanitizer trip.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "runtime/engine.h"
#include "runtime/sharded_engine.h"
#include "runtime/wal.h"
#include "workload/stock.h"

namespace cepr {
namespace {

constexpr char kStockQuery[] =
    "SELECT a.symbol, a.price, MIN(b.price), c.price "
    "FROM Stock MATCH PATTERN SEQ(a, b+, c) "
    "PARTITION BY symbol "
    "WHERE b[i].price < b[i-1].price AND b[1].price < a.price "
    "  AND c.price > a.price "
    "WITHIN 100 MILLISECONDS "
    "RANK BY (a.price - MIN(b.price)) / a.price DESC "
    "LIMIT 10 EMIT ON WINDOW CLOSE";

struct StockStream {
  SchemaPtr schema;
  std::vector<Event> events;
};

StockStream InOrderStock(size_t n) {
  StockOptions options;
  options.num_symbols = 6;
  options.v_probability = 0.03;
  options.base.interval_micros = 1000;
  StockGenerator gen(options);
  return {gen.schema(), gen.Take(n)};
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileOrDie(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  EXPECT_TRUE(out.good()) << path;
}

// --- Finish / Flush idempotence -------------------------------------------

TEST(IdempotenceTest, SerialDoubleFinishEmitsNothingNew) {
  const StockStream stream = InOrderStock(3000);
  Engine engine;
  ASSERT_TRUE(engine.RegisterSchema(stream.schema).ok());
  CollectSink sink;
  ASSERT_TRUE(
      engine.RegisterQuery("q", kStockQuery, QueryOptions{}, &sink).ok());
  for (const Event& e : stream.events) ASSERT_TRUE(engine.Push(Event(e)).ok());
  engine.Finish();
  const size_t after_first = sink.results().size();
  EXPECT_GT(after_first, 0u) << "workload produced no results; weak test";
  engine.Finish();
  EXPECT_EQ(sink.results().size(), after_first);
  // Flush after Finish is a legal no-op: buffers are drained, windows shut.
  EXPECT_TRUE(engine.Flush().ok());
  engine.Finish();
  EXPECT_EQ(sink.results().size(), after_first);
}

TEST(IdempotenceTest, ShardedDoubleFinishEmitsNothingNew) {
  const StockStream stream = InOrderStock(3000);
  ShardedEngineOptions options;
  options.num_shards = 2;
  ShardedEngine engine(options);
  ASSERT_TRUE(engine.RegisterSchema(stream.schema).ok());
  CollectSink sink;
  ASSERT_TRUE(
      engine.RegisterQuery("q", kStockQuery, QueryOptions{}, &sink).ok());
  for (const Event& e : stream.events) ASSERT_TRUE(engine.Push(Event(e)).ok());
  engine.Finish();
  const size_t after_first = sink.results().size();
  EXPECT_GT(after_first, 0u) << "workload produced no results; weak test";
  engine.Finish();
  engine.Finish();
  EXPECT_EQ(sink.results().size(), after_first);
  // The sharded engine is terminal after Finish: a flush is refused, not
  // silently half-applied.
  EXPECT_EQ(engine.Flush().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(sink.results().size(), after_first);
}

TEST(IdempotenceTest, DoubleFlushMidStreamEqualsSingleFlush) {
  // Under bounded disorder a mid-stream Flush force-releases resident
  // events (observable); a second immediate Flush must release nothing.
  const StockStream stream = InOrderStock(4000);
  const auto run = [&](int flushes) {
    EngineOptions options;
    options.max_lateness_micros = 20000;
    Engine engine(options);
    EXPECT_TRUE(engine.RegisterSchema(stream.schema).ok());
    CollectSink sink;
    EXPECT_TRUE(
        engine.RegisterQuery("q", kStockQuery, QueryOptions{}, &sink).ok());
    for (size_t i = 0; i < stream.events.size(); ++i) {
      EXPECT_TRUE(engine.Push(Event(stream.events[i])).ok());
      if (i == 2000) {
        for (int f = 0; f < flushes; ++f) EXPECT_TRUE(engine.Flush().ok());
      }
    }
    engine.Finish();
    return sink.results();
  };
  const auto once = run(1);
  const auto thrice = run(3);
  ASSERT_EQ(once.size(), thrice.size());
  for (size_t i = 0; i < once.size(); ++i) {
    EXPECT_EQ(once[i].window_id, thrice[i].window_id) << "@" << i;
    EXPECT_EQ(once[i].rank, thrice[i].rank) << "@" << i;
    EXPECT_EQ(once[i].match.score, thrice[i].match.score) << "@" << i;
    EXPECT_EQ(once[i].match.row, thrice[i].match.row) << "@" << i;
  }
}

TEST(IdempotenceTest, ShardedDoubleFlushMidStreamEqualsSingleFlush) {
  const StockStream stream = InOrderStock(4000);
  const auto run = [&](int flushes) {
    ShardedEngineOptions options;
    options.num_shards = 2;
    options.max_lateness_micros = 20000;
    ShardedEngine engine(options);
    EXPECT_TRUE(engine.RegisterSchema(stream.schema).ok());
    CollectSink sink;
    EXPECT_TRUE(
        engine.RegisterQuery("q", kStockQuery, QueryOptions{}, &sink).ok());
    for (size_t i = 0; i < stream.events.size(); ++i) {
      EXPECT_TRUE(engine.Push(Event(stream.events[i])).ok());
      if (i == 2000) {
        for (int f = 0; f < flushes; ++f) EXPECT_TRUE(engine.Flush().ok());
      }
    }
    engine.Finish();
    return sink.results();
  };
  const auto once = run(1);
  const auto thrice = run(3);
  ASSERT_EQ(once.size(), thrice.size());
  for (size_t i = 0; i < once.size(); ++i) {
    EXPECT_EQ(once[i].window_id, thrice[i].window_id) << "@" << i;
    EXPECT_EQ(once[i].rank, thrice[i].rank) << "@" << i;
    EXPECT_EQ(once[i].match.score, thrice[i].match.score) << "@" << i;
    EXPECT_EQ(once[i].match.row, thrice[i].match.row) << "@" << i;
  }
}

// --- Snapshot round-trip basics -------------------------------------------

TEST(SnapshotTest, EmptyEngineRoundTripsOptionsAndSchemas) {
  const StockStream stream = InOrderStock(10);
  const std::string snap = ::testing::TempDir() + "durability_empty.ckpt";
  {
    EngineOptions options;
    options.max_lateness_micros = 12345;
    options.late_policy = LatePolicy::kClamp;
    Engine writer(options);
    ASSERT_TRUE(writer.RegisterSchema(stream.schema).ok());
    ASSERT_TRUE(writer.Checkpoint(snap).ok());
    EXPECT_EQ(writer.durability().checkpoints_written, 1u);
    EXPECT_GT(writer.durability().checkpoint_bytes, 0u);
  }
  Engine engine;
  ASSERT_TRUE(engine.Restore(snap, "", nullptr).ok());
  EXPECT_EQ(engine.options().max_lateness_micros, 12345);
  EXPECT_EQ(engine.options().late_policy, LatePolicy::kClamp);
  EXPECT_TRUE(engine.GetSchema("Stock").ok());
  // The restored engine is live: events flow as if never interrupted. Note
  // the rebind — schema identity is per-engine, so a recovering process
  // builds events against the engine's own schema handle.
  const Event& e = stream.events[0];
  ASSERT_TRUE(engine
                  .Push(Event(engine.GetSchema("Stock").value(), e.timestamp(),
                              e.values()))
                  .ok());
  engine.Finish();
}

TEST(SnapshotTest, CheckpointIsAtomicAgainstOverwrite) {
  // Checkpointing over an existing snapshot goes through temp + rename, so
  // a second checkpoint replaces the first in one step and the file is
  // always a complete, valid image.
  const StockStream stream = InOrderStock(2000);
  const std::string snap = ::testing::TempDir() + "durability_atomic.ckpt";
  Engine engine;
  ASSERT_TRUE(engine.RegisterSchema(stream.schema).ok());
  CollectSink sink;
  ASSERT_TRUE(
      engine.RegisterQuery("q", kStockQuery, QueryOptions{}, &sink).ok());
  for (size_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(engine.Push(Event(stream.events[i])).ok());
  }
  ASSERT_TRUE(engine.Checkpoint(snap).ok());
  const std::string first = ReadFileOrDie(snap);
  for (size_t i = 1000; i < 2000; ++i) {
    ASSERT_TRUE(engine.Push(Event(stream.events[i])).ok());
  }
  ASSERT_TRUE(engine.Checkpoint(snap).ok());
  const std::string second = ReadFileOrDie(snap);
  EXPECT_NE(first, second);
  EXPECT_EQ(engine.durability().checkpoints_written, 2u);
  // No temp residue after a successful publish.
  std::ifstream tmp(snap + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());
  engine.Finish();
}

// --- Chunked WAL open scan -------------------------------------------------

TEST(WalScanTest, MultiMegabyteWalTruncatesTornTailIdenticallyToReadAll) {
  // Regression for the open-time scan: it used to slurp the whole journal
  // into one string; it now streams fixed-size chunks. The observable
  // contract must be unchanged however large the file is and wherever the
  // torn tail lands relative to chunk boundaries (256KiB): Open truncates
  // to exactly the valid prefix WalReader::ReadAll sees, counts the same
  // records, and appending resumes cleanly.
  const std::string path = ::testing::TempDir() + "durability_chunked.wal";
  std::remove(path.c_str());

  // ~2000 records of ~2KB each => ~4MB, many scan chunks. Payload sizes are
  // deliberately not divisors of the chunk size, so frames straddle chunk
  // boundaries at varying offsets.
  const size_t kRecords = 2000;
  {
    WalWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    for (size_t i = 0; i < kRecords; ++i) {
      Event e(SchemaPtr{}, static_cast<Timestamp>(i * 1000),
              {Value::Int(static_cast<int64_t>(i)),
               Value::String(std::string(1700 + i % 613, 'x'))});
      ASSERT_TRUE(writer.AppendEvent("S", e).ok());
    }
    ASSERT_TRUE(writer.Sync().ok());
  }
  const std::string intact = ReadFileOrDie(path);
  ASSERT_GT(intact.size(), 3u << 20) << "file too small to exercise chunking";

  // Torn tails at positions chosen to straddle scan-chunk boundaries:
  // just under / at / just over 1 and 2 chunks, plus a mid-file cut and a
  // cut inside the final frame.
  const size_t chunk = 256u << 10;
  const std::vector<size_t> cuts = {
      chunk - 3,     chunk,         chunk + 5,      2 * chunk - 1,
      2 * chunk + 9, intact.size() / 2, intact.size() - 7};
  for (const size_t cut : cuts) {
    SCOPED_TRACE("torn at " + std::to_string(cut));
    WriteFileOrDie(path, intact.substr(0, cut));

    // Reference: the reader's valid-prefix verdict on the torn file.
    std::vector<WalRecord> read_back;
    uint64_t dropped = 0;
    ASSERT_TRUE(WalReader::ReadAll(path, &read_back, &dropped).ok());

    WalWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    EXPECT_EQ(writer.records(), read_back.size());

    // Open physically truncated the torn bytes away.
    const std::string after_open = ReadFileOrDie(path);
    EXPECT_EQ(after_open.size(), cut - dropped);
    EXPECT_EQ(after_open, intact.substr(0, after_open.size()));

    // Appending resumes after the last valid record.
    Event extra(SchemaPtr{}, 1, {Value::Int(-1), Value::String("tail")});
    ASSERT_TRUE(writer.AppendEvent("S", extra).ok());
    writer.Close();
    std::vector<WalRecord> final_records;
    ASSERT_TRUE(WalReader::ReadAll(path, &final_records, nullptr).ok());
    ASSERT_EQ(final_records.size(), read_back.size() + 1);
    EXPECT_EQ(final_records.back().event.values().back().AsString(), "tail");
  }
  std::remove(path.c_str());
}

// --- Torn-file fuzz --------------------------------------------------------

class TornFileFuzzTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const StockStream stream = InOrderStock(2000);
    schema_ = stream.schema;
    snap_path_ = ::testing::TempDir() + "durability_fuzz.ckpt";
    wal_path_ = ::testing::TempDir() + "durability_fuzz.wal";
    std::remove(wal_path_.c_str());
    Engine engine;
    ASSERT_TRUE(engine.RegisterSchema(stream.schema).ok());
    CollectSink sink;
    ASSERT_TRUE(
        engine.RegisterQuery("q", kStockQuery, QueryOptions{}, &sink).ok());
    ASSERT_TRUE(engine.OpenWal(wal_path_).ok());
    for (size_t i = 0; i < 1200; ++i) {
      ASSERT_TRUE(engine.Push(Event(stream.events[i])).ok());
    }
    ASSERT_TRUE(engine.Checkpoint(snap_path_).ok());
    for (size_t i = 1200; i < 2000; ++i) {
      ASSERT_TRUE(engine.Push(Event(stream.events[i])).ok());
    }
    ASSERT_TRUE(engine.SyncWal().ok());
    snap_bytes_ = new std::string(ReadFileOrDie(snap_path_));
    wal_bytes_ = new std::string(ReadFileOrDie(wal_path_));
    ASSERT_GT(snap_bytes_->size(), 64u);
    ASSERT_GT(wal_bytes_->size(), 64u);
  }

  static void TearDownTestSuite() {
    delete snap_bytes_;
    delete wal_bytes_;
    snap_bytes_ = nullptr;
    wal_bytes_ = nullptr;
  }

  // A restore attempt against (possibly corrupted) files: must return a
  // status, never crash or hang. Returns it for the caller's assertions.
  static Status TryRestore(const std::string& snap, const std::string& wal) {
    Engine engine;
    CollectSink sink;
    return engine.Restore(snap, wal,
                          [&](const std::string&) -> Sink* { return &sink; });
  }

  static SchemaPtr schema_;
  static std::string snap_path_;
  static std::string wal_path_;
  static std::string* snap_bytes_;
  static std::string* wal_bytes_;
};

SchemaPtr TornFileFuzzTest::schema_;
std::string TornFileFuzzTest::snap_path_;
std::string TornFileFuzzTest::wal_path_;
std::string* TornFileFuzzTest::snap_bytes_ = nullptr;
std::string* TornFileFuzzTest::wal_bytes_ = nullptr;

TEST_F(TornFileFuzzTest, IntactFilesRestoreCleanly) {
  const Status s = TryRestore(snap_path_, wal_path_);
  ASSERT_TRUE(s.ok()) << s.ToString();
}

TEST_F(TornFileFuzzTest, TruncatedSnapshotsFailCleanly) {
  const std::string mutant = ::testing::TempDir() + "durability_fuzz_trunc.ckpt";
  Random rng(0xF112E);
  std::vector<size_t> cuts = {0, 1, 7, 8, 12, 13, 20, 21,
                              snap_bytes_->size() - 1};
  for (int i = 0; i < 24; ++i) {
    cuts.push_back(static_cast<size_t>(
        rng.Uniform(static_cast<uint64_t>(snap_bytes_->size()))));
  }
  for (const size_t cut : cuts) {
    SCOPED_TRACE("truncate at " + std::to_string(cut));
    WriteFileOrDie(mutant, snap_bytes_->substr(0, cut));
    const Status s = TryRestore(mutant, wal_path_);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kCorrupt) << s.ToString();
    EXPECT_NE(s.ToString().find(mutant), std::string::npos) << s.ToString();
  }
}

TEST_F(TornFileFuzzTest, BitFlippedSnapshotsFailCleanly) {
  const std::string mutant = ::testing::TempDir() + "durability_fuzz_flip.ckpt";
  Random rng(0xF11B);
  // Every header byte plus a seeded sample of the body.
  std::vector<size_t> offsets;
  for (size_t i = 0; i < 21; ++i) offsets.push_back(i);
  for (int i = 0; i < 32; ++i) {
    offsets.push_back(static_cast<size_t>(
        rng.Uniform(static_cast<uint64_t>(snap_bytes_->size()))));
  }
  for (const size_t offset : offsets) {
    SCOPED_TRACE("flip byte " + std::to_string(offset));
    std::string bytes = *snap_bytes_;
    bytes[offset] = static_cast<char>(
        bytes[offset] ^ static_cast<char>(1u << rng.Uniform(8)));
    WriteFileOrDie(mutant, bytes);
    const Status s = TryRestore(mutant, wal_path_);
    ASSERT_FALSE(s.ok());
    // A flip lands as body corruption (CRC), a header-field mismatch, or —
    // for the engine-kind byte, which the CRC does not cover — a clean
    // kind-mismatch rejection. All are diagnosable errors naming the file.
    EXPECT_TRUE(s.code() == StatusCode::kCorrupt ||
                s.code() == StatusCode::kInvalidArgument)
        << s.ToString();
    EXPECT_NE(s.ToString().find(mutant), std::string::npos) << s.ToString();
  }
}

TEST_F(TornFileFuzzTest, CorruptedWalNeverCrashes) {
  // WAL damage is survivable by design (torn tails are truncated at open),
  // but damage before the snapshot's cut must be reported as corruption,
  // and nothing may crash, hang, or trip a sanitizer.
  const std::string mutant = ::testing::TempDir() + "durability_fuzz.walmut";
  Random wal_rng(0xA17);
  for (int i = 0; i < 24; ++i) {
    std::string bytes = *wal_bytes_;
    const bool truncate = (i % 2) == 0;
    if (truncate) {
      const size_t cut = static_cast<size_t>(
          wal_rng.Uniform(static_cast<uint64_t>(bytes.size())));
      SCOPED_TRACE("wal truncate at " + std::to_string(cut));
      bytes.resize(cut);
      WriteFileOrDie(mutant, bytes);
      const Status s = TryRestore(snap_path_, mutant);
      // Either the tail past the cut was lost (ok, shorter replay) or the
      // journal no longer reaches the snapshot's cut (corrupt).
      EXPECT_TRUE(s.ok() || s.code() == StatusCode::kCorrupt) << s.ToString();
    } else {
      const size_t offset = static_cast<size_t>(
          wal_rng.Uniform(static_cast<uint64_t>(bytes.size())));
      SCOPED_TRACE("wal flip at " + std::to_string(offset));
      bytes[offset] = static_cast<char>(
          bytes[offset] ^ static_cast<char>(1u << wal_rng.Uniform(8)));
      WriteFileOrDie(mutant, bytes);
      const Status s = TryRestore(snap_path_, mutant);
      EXPECT_TRUE(s.ok() || s.code() == StatusCode::kCorrupt) << s.ToString();
    }
  }
}

TEST_F(TornFileFuzzTest, WalTruncatedBelowCutNamesTheJournal) {
  // Deterministic case of the corruption path: journal cut off before the
  // snapshot's record count.
  const std::string mutant = ::testing::TempDir() + "durability_fuzz.walshort";
  WriteFileOrDie(mutant, wal_bytes_->substr(0, 32));
  const Status s = TryRestore(snap_path_, mutant);
  ASSERT_EQ(s.code(), StatusCode::kCorrupt) << s.ToString();
  EXPECT_NE(s.ToString().find(mutant), std::string::npos) << s.ToString();
}

}  // namespace
}  // namespace cepr
