// Derived streams (EMIT ... INTO): query results re-enter the engine as
// events, composing hierarchical patterns.

#include <gtest/gtest.h>

#include "runtime/engine.h"
#include "testing/helpers.h"

namespace cepr {
namespace {

using testing::Tick;

constexpr char kDdl[] =
    "CREATE STREAM Stock (symbol STRING, price FLOAT RANGE [1, 1000], "
    "volume INT RANGE [1, 10000])";

// Level-1 query: every up-tick pair becomes a "Rise" event.
constexpr char kRises[] =
    "SELECT a.price AS low, c.price AS high "
    "FROM Stock MATCH PATTERN SEQ(a, c) "
    "USING STRICT "
    "WHERE c.price > a.price "
    "WITHIN 1 SECONDS "
    "EMIT ON COMPLETE INTO Rise";

// Level-2 query over the derived stream: three consecutive rises.
constexpr char kRallies[] =
    "SELECT COUNT(r) AS rises, LAST(r).high AS peak "
    "FROM Rise MATCH PATTERN SEQ(r{3}, x) "
    "WHERE r[i].low >= r[i-1].low AND x.high > 0 "
    "WITHIN 10 SECONDS";

class DerivedStreamTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(engine_.ExecuteDdl(kDdl).ok()); }

  Status PushPrices(const std::vector<double>& prices) {
    auto schema = engine_.GetSchema("Stock").value();
    Timestamp ts = 0;
    for (double p : prices) {
      CEPR_RETURN_IF_ERROR(engine_.Push(Event(
          schema, ts, {Value::String("S"), Value::Float(p), Value::Int(1)})));
      ts += 100 * 1000;
    }
    return Status::OK();
  }

  Engine engine_;
};

TEST_F(DerivedStreamTest, CreatesDerivedSchemaFromOutputs) {
  ASSERT_TRUE(
      engine_.RegisterQuery("rises", kRises, QueryOptions{}, nullptr).ok());
  auto derived = engine_.GetSchema("Rise");
  ASSERT_TRUE(derived.ok());
  EXPECT_EQ((*derived)->num_attributes(), 2u);
  EXPECT_EQ((*derived)->attribute(0).name, "low");
  EXPECT_EQ((*derived)->attribute(0).type, ValueType::kFloat);
  EXPECT_EQ((*derived)->attribute(1).name, "high");
}

TEST_F(DerivedStreamTest, ResultsFlowIntoDownstreamQuery) {
  CollectSink rises;
  CollectSink rallies;
  ASSERT_TRUE(
      engine_.RegisterQuery("rises", kRises, QueryOptions{}, &rises).ok());
  auto st = engine_.RegisterQuery("rallies", kRallies, QueryOptions{}, &rallies);
  ASSERT_TRUE(st.ok()) << st.ToString();

  // Strictly rising prices: each adjacent pair is a Rise; four rises make
  // (at least) one 3+1 rally on the derived stream.
  ASSERT_TRUE(PushPrices({10, 11, 12, 13, 14, 15}).ok());
  engine_.Finish();

  EXPECT_EQ(rises.results().size(), 5u);
  ASSERT_FALSE(rallies.results().empty());
  EXPECT_EQ(rallies.results()[0].match.row[0], Value::Int(3));
}

TEST_F(DerivedStreamTest, SelfLoopRejected) {
  auto st = engine_.RegisterQuery(
      "loop",
      "SELECT a.price FROM Stock MATCH PATTERN SEQ(a) EMIT ON COMPLETE "
      "INTO Stock",
      QueryOptions{}, nullptr);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("own input stream"), std::string::npos);
}

TEST_F(DerivedStreamTest, ExistingStreamShapeValidated) {
  ASSERT_TRUE(engine_.ExecuteDdl("CREATE STREAM Rise (wrong INT)").ok());
  auto st = engine_.RegisterQuery("rises", kRises, QueryOptions{}, nullptr);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(DerivedStreamTest, CompositionCycleIsBounded) {
  // A -> B and B -> A: the depth guard must stop the recursion with a
  // warning rather than hanging or crashing. Build the cycle via manual
  // schemas so both registrations succeed.
  ASSERT_TRUE(engine_.ExecuteDdl("CREATE STREAM A (x FLOAT)").ok());
  ASSERT_TRUE(
      engine_
          .RegisterQuery("ab",
                         "SELECT a.x AS x FROM A MATCH PATTERN SEQ(a) "
                         "EMIT ON COMPLETE INTO B",
                         QueryOptions{}, nullptr)
          .ok());
  ASSERT_TRUE(
      engine_
          .RegisterQuery("ba",
                         "SELECT b.x AS x FROM B MATCH PATTERN SEQ(b) "
                         "EMIT ON COMPLETE INTO A",
                         QueryOptions{}, nullptr)
          .ok());
  auto schema = engine_.GetSchema("A").value();
  EXPECT_TRUE(engine_.Push(Event(schema, 0, {Value::Float(1)})).ok());
  // Each bounce increments the ingest counter until the depth cap.
  EXPECT_GT(engine_.events_ingested(), 2u);
  EXPECT_LE(engine_.events_ingested(), 10u);
}

TEST_F(DerivedStreamTest, BufferedRankedResultsClampTimestamps) {
  // Ranked window emission is score-ordered, so derived events may arrive
  // with non-monotone last_ts; the derived stream clamps instead of
  // rejecting, and the downstream query still runs.
  CollectSink downstream;
  ASSERT_TRUE(engine_
                  .RegisterQuery(
                      "ranked",
                      "SELECT a.price AS p, c.price AS q "
                      "FROM Stock MATCH PATTERN SEQ(a, c) "
                      "WHERE c.price > a.price "
                      "WITHIN 2 SECONDS "
                      "RANK BY c.price - a.price DESC "
                      "EMIT ON WINDOW CLOSE INTO Gains",
                      QueryOptions{}, nullptr)
                  .ok());
  ASSERT_TRUE(engine_
                  .RegisterQuery("watch",
                                 "SELECT g.p FROM Gains MATCH PATTERN SEQ(g)",
                                 QueryOptions{}, &downstream)
                  .ok());
  ASSERT_TRUE(PushPrices({10, 11, 30, 12}).ok());
  engine_.Finish();
  EXPECT_FALSE(downstream.results().empty());
}

}  // namespace
}  // namespace cepr
