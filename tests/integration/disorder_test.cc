// Disorder property suite for the watermark-driven reorder buffer: a
// stream shuffled within the lateness bound must produce ranked output
// bit-identical (scores, ranks, tie-order, windows) to the in-order
// stream, on the serial engine and on the sharded engine at every shard
// count — including under a deterministic injected fault schedule, whose
// keys are stream sequence numbers stamped at buffer release. Late events
// beyond the bound follow the configured LatePolicy without perturbing the
// on-time results.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/fault.h"
#include "common/random.h"
#include "runtime/engine.h"
#include "runtime/sharded_engine.h"
#include "workload/stock.h"

namespace cepr {
namespace {

constexpr char kStockQuery[] =
    "SELECT a.symbol, a.price, MIN(b.price), c.price "
    "FROM Stock MATCH PATTERN SEQ(a, b+, c) "
    "PARTITION BY symbol "
    "WHERE b[i].price < b[i-1].price AND b[1].price < a.price "
    "  AND c.price > a.price "
    "WITHIN 100 MILLISECONDS "
    "RANK BY (a.price - MIN(b.price)) / a.price DESC "
    "LIMIT 10 EMIT ON WINDOW CLOSE";

// 20 ms of tolerated disorder over a 1 ms event interval: ~20-event blocks.
constexpr Timestamp kLateness = 20000;

struct StockStream {
  SchemaPtr schema;
  std::vector<Event> events;
};

StockStream InOrderStock(size_t n = 6000) {
  StockOptions options;
  options.num_symbols = 6;
  options.v_probability = 0.03;
  options.base.interval_micros = 1000;
  StockGenerator gen(options);
  return {gen.schema(), gen.Take(n)};
}

// Shuffles within consecutive event-time blocks of span <= bound. Every
// event's displacement then stays within the bound (its block's span), so
// a reorder buffer with that bound never sees a late event.
std::vector<Event> BlockShuffle(const std::vector<Event>& events,
                                Timestamp bound, uint64_t seed) {
  std::vector<Event> out;
  out.reserve(events.size());
  for (const Event& e : events) out.push_back(Event(e));
  Random rng(seed);
  for (size_t lo = 0; lo < out.size();) {
    size_t hi = lo;
    while (hi + 1 < out.size() &&
           out[hi + 1].timestamp() - out[lo].timestamp() <= bound) {
      ++hi;
    }
    for (size_t i = hi; i > lo; --i) {
      const size_t j = lo + rng.Uniform(static_cast<uint64_t>(i - lo + 1));
      std::swap(out[i], out[j]);
    }
    lo = hi + 1;
  }
  return out;
}

std::vector<RankedResult> RunSerial(const StockStream& stream,
                                    const std::vector<Event>& arrivals,
                                    Timestamp lateness,
                                    const FaultInjector* injector = nullptr) {
  EngineOptions options;
  options.max_lateness_micros = lateness;
  if (injector != nullptr) {
    options.fault_policy = FaultPolicy::kSkipAndCount;
    options.fault_injector = injector;
  }
  Engine engine(options);
  EXPECT_TRUE(engine.RegisterSchema(stream.schema).ok());
  CollectSink sink;
  QueryOptions query_options;
  query_options.ranker = RankerPolicy::kPruned;
  EXPECT_TRUE(
      engine.RegisterQuery("q", kStockQuery, query_options, &sink).ok());
  for (const Event& e : arrivals) {
    const Status s = engine.Push(Event(e));
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  engine.Finish();
  return sink.results();
}

std::vector<RankedResult> RunSharded(const StockStream& stream,
                                     const std::vector<Event>& arrivals,
                                     Timestamp lateness, size_t num_shards,
                                     const FaultInjector* injector = nullptr) {
  ShardedEngineOptions options;
  options.num_shards = num_shards;
  options.max_lateness_micros = lateness;
  if (injector != nullptr) {
    options.fault_policy = FaultPolicy::kSkipAndCount;
    options.fault_injector = injector;
  }
  ShardedEngine engine(options);
  EXPECT_TRUE(engine.RegisterSchema(stream.schema).ok());
  CollectSink sink;
  QueryOptions query_options;
  query_options.ranker = RankerPolicy::kPruned;
  EXPECT_TRUE(
      engine.RegisterQuery("q", kStockQuery, query_options, &sink).ok());
  for (const Event& e : arrivals) {
    const Status s = engine.Push(Event(e));
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  engine.Finish();
  return sink.results();
}

void ExpectIdentical(const std::vector<RankedResult>& expected,
                     const std::vector<RankedResult>& actual,
                     const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].window_id, actual[i].window_id) << label << " @" << i;
    EXPECT_EQ(expected[i].rank, actual[i].rank) << label << " @" << i;
    EXPECT_EQ(expected[i].provisional, actual[i].provisional)
        << label << " @" << i;
    EXPECT_EQ(expected[i].match.first_ts, actual[i].match.first_ts)
        << label << " @" << i;
    EXPECT_EQ(expected[i].match.last_ts, actual[i].match.last_ts)
        << label << " @" << i;
    EXPECT_EQ(expected[i].match.last_sequence, actual[i].match.last_sequence)
        << label << " @" << i;
    EXPECT_DOUBLE_EQ(expected[i].match.score, actual[i].match.score)
        << label << " @" << i;
    EXPECT_EQ(expected[i].match.row, actual[i].match.row) << label << " @" << i;
  }
}

class DisorderEquivalenceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(DisorderEquivalenceTest, ShuffledShardedIdenticalToInOrderSerial) {
  const StockStream stream = InOrderStock();
  const std::vector<Event> shuffled =
      BlockShuffle(stream.events, kLateness, /*seed=*/42);
  const auto baseline = RunSerial(stream, stream.events, /*lateness=*/0);
  EXPECT_FALSE(baseline.empty()) << "workload produced no results; weak test";
  ExpectIdentical(
      baseline, RunSharded(stream, shuffled, kLateness, GetParam()),
      "disorder sharded=" + std::to_string(GetParam()));
}

TEST_P(DisorderEquivalenceTest, FaultScheduleSurvivesDisorder) {
  // Poison keys are stream sequence numbers; sequences are stamped at
  // buffer release, so the shuffled-then-reordered stream poisons exactly
  // the events the in-order baseline does and output stays identical.
  const std::vector<uint64_t> kPoisonKeys = {7, 100, 101, 555, 1500, 3999};
  FaultInjector baseline_injector(17);
  baseline_injector.ArmKeys(fault_points::kEvalPoison, kPoisonKeys);
  FaultInjector disorder_injector(17);
  disorder_injector.ArmKeys(fault_points::kEvalPoison, kPoisonKeys);

  const StockStream stream = InOrderStock(4000);
  const std::vector<Event> shuffled =
      BlockShuffle(stream.events, kLateness, /*seed=*/7);
  const auto baseline =
      RunSerial(stream, stream.events, /*lateness=*/0, &baseline_injector);
  EXPECT_FALSE(baseline.empty()) << "workload produced no results; weak test";
  ExpectIdentical(baseline,
                  RunSharded(stream, shuffled, kLateness, GetParam(),
                             &disorder_injector),
                  "disorder+faults sharded=" + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, DisorderEquivalenceTest,
                         ::testing::Values(1, 2, 4));

TEST(DisorderTest, ShuffledSerialIdenticalToInOrderSerial) {
  const StockStream stream = InOrderStock();
  const std::vector<Event> shuffled =
      BlockShuffle(stream.events, kLateness, /*seed=*/1234);
  const auto baseline = RunSerial(stream, stream.events, /*lateness=*/0);
  EXPECT_FALSE(baseline.empty()) << "workload produced no results; weak test";
  ExpectIdentical(baseline, RunSerial(stream, shuffled, kLateness),
                  "disorder serial");
  // The buffer actually did work: events were admitted below high_ts.
  Engine probe(EngineOptions{.max_lateness_micros = kLateness});
  ASSERT_TRUE(probe.RegisterSchema(stream.schema).ok());
  for (const Event& e : shuffled) ASSERT_TRUE(probe.Push(Event(e)).ok());
  probe.Finish();
  const ReorderStats stats = probe.Snapshot().reorder;
  EXPECT_GT(stats.events_reordered, 0u);
  EXPECT_GT(stats.reorder_buffer_peak, 1u);
  EXPECT_EQ(stats.events_late_dropped, 0u);
  EXPECT_EQ(stats.events_clamped, 0u);
}

TEST(DisorderTest, ZeroLatenessPreservesStrictBehavior) {
  const StockStream stream = InOrderStock(200);
  const std::vector<Event> shuffled =
      BlockShuffle(stream.events, kLateness, /*seed=*/9);
  Engine engine;  // default: lateness 0, kReject
  ASSERT_TRUE(engine.RegisterSchema(stream.schema).ok());
  size_t rejections = 0;
  Status first_rejection;
  for (const Event& e : shuffled) {
    const Status s = engine.Push(Event(e));
    if (!s.ok()) {
      if (rejections == 0) first_rejection = s;
      ++rejections;
    }
  }
  EXPECT_GT(rejections, 0u) << "shuffle produced no regression; weak test";
  EXPECT_EQ(first_rejection.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(first_rejection.message().find("out-of-order"), std::string::npos);
  EXPECT_EQ(engine.events_ingested() + rejections, shuffled.size());
}

TEST(DisorderTest, DropAndCountDiscardsOnlyTheStragglers) {
  // Interleave copies of early events (far older than the bound) into the
  // shuffled stream: under kDropAndCount they are discarded and counted,
  // and the ranked output equals the baseline over the on-time events.
  const StockStream stream = InOrderStock(3000);
  std::vector<Event> arrivals = BlockShuffle(stream.events, kLateness, 77);
  size_t stragglers = 0;
  for (size_t pos = 500; pos < arrivals.size(); pos += 500) {
    arrivals.insert(arrivals.begin() + static_cast<std::ptrdiff_t>(pos),
                    Event(stream.events[pos / 500]));
    ++stragglers;
  }
  ASSERT_GT(stragglers, 0u);

  EngineOptions options;
  options.max_lateness_micros = kLateness;
  options.late_policy = LatePolicy::kDropAndCount;
  Engine engine(options);
  ASSERT_TRUE(engine.RegisterSchema(stream.schema).ok());
  CollectSink sink;
  QueryOptions query_options;
  query_options.ranker = RankerPolicy::kPruned;
  ASSERT_TRUE(
      engine.RegisterQuery("q", kStockQuery, query_options, &sink).ok());
  for (const Event& e : arrivals) {
    const Status s = engine.Push(Event(e));
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
  engine.Finish();

  const ReorderStats stats = engine.Snapshot().reorder;
  EXPECT_EQ(stats.events_late_dropped, stragglers);
  EXPECT_EQ(stats.events_clamped, 0u);
  EXPECT_EQ(engine.events_ingested(), stream.events.size());
  const auto baseline = RunSerial(stream, stream.events, /*lateness=*/0);
  EXPECT_FALSE(baseline.empty()) << "workload produced no results; weak test";
  ExpectIdentical(baseline, sink.results(), "drop-and-count");
}

TEST(DisorderTest, RejectSurfacesLateEventAndStreamContinues) {
  const StockStream stream = InOrderStock(100);
  EngineOptions options;
  options.max_lateness_micros = kLateness;  // late_policy stays kReject
  Engine engine(options);
  ASSERT_TRUE(engine.RegisterSchema(stream.schema).ok());
  for (size_t i = 50; i < 100; ++i) {
    ASSERT_TRUE(engine.Push(Event(stream.events[i])).ok());
  }
  // events[0] is ~50 ms older than high_ts: beyond the 20 ms bound.
  const Status late = engine.Push(Event(stream.events[0]));
  EXPECT_EQ(late.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(late.message().find("lateness bound"), std::string::npos);
  // The stream is not poisoned: in-order ingest continues.
  Event next(stream.events[99]);
  next.set_timestamp(next.timestamp() + 1000);
  EXPECT_TRUE(engine.Push(std::move(next)).ok());
  engine.Finish();
  EXPECT_EQ(engine.events_ingested(), 51u);
  EXPECT_EQ(engine.Snapshot().reorder.events_late_dropped, 0u);
}

}  // namespace
}  // namespace cepr
