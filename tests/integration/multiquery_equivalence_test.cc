// Property suite for the shared multi-query evaluation layer
// (docs/MULTIQUERY.md): template interning, predicate-index dispatch and
// shared window tracking are pure routing optimizations, so every query in
// a fleet must produce byte-identical ranked output with shared evaluation
// on or off — serial and sharded at every shard count, under an injected
// fault schedule (which degrades the shared path), and under bounded
// out-of-order arrival. Plus the hot add/remove template-refcount
// regression.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "common/fault.h"
#include "runtime/engine.h"
#include "runtime/sharded_engine.h"
#include "workload/stock.h"

namespace cepr {
namespace {

std::vector<Event> StockEvents(uint64_t seed, size_t n) {
  StockOptions options;
  options.base.seed = seed;
  options.num_symbols = 4;
  options.v_probability = 0.05;
  options.base.interval_micros = 1000;
  StockGenerator gen(options);
  return gen.Take(n);
}

// A fleet mixing every predicate-index class: equality-anchored rebounds
// (some on volumes that rarely occur), range-anchored rebounds, an
// uncorrelated residual anchor, and correlated dip queries the index can
// never rule out. The dip pair and the rebound family each share one NFA
// template (constants differ only).
std::vector<std::pair<std::string, std::string>> Fleet() {
  std::vector<std::pair<std::string, std::string>> fleet;
  const auto rebound = [](const std::string& anchor) {
    return "SELECT a.symbol, a.price, b.price FROM Stock "
           "MATCH PATTERN SEQ(a, b) PARTITION BY symbol "
           "WHERE " + anchor + " AND b.price > a.price "
           "WITHIN 10 MILLISECONDS "
           "RANK BY b.price - a.price DESC "
           "LIMIT 5 EMIT ON WINDOW CLOSE";
  };
  const auto dip = [](int threshold) {
    return "SELECT a.symbol, a.price, MIN(b.price), c.price "
           "FROM Stock MATCH PATTERN SEQ(a, b+, c) "
           "PARTITION BY symbol "
           "WHERE b[i].price < b[i-1].price AND b[1].price < a.price "
           "  AND c.price > a.price AND a.price > " +
           std::to_string(threshold) +
           " WITHIN 100 MILLISECONDS "
           "RANK BY (a.price - MIN(b.price)) / a.price DESC "
           "LIMIT 5 EMIT ON WINDOW CLOSE";
  };
  fleet.emplace_back("eq_hit", rebound("a.volume = 500"));
  fleet.emplace_back("eq_miss", rebound("a.volume = 9999"));
  fleet.emplace_back("range_low", rebound("a.price > 20"));
  fleet.emplace_back("range_high", rebound("a.price >= 600"));
  fleet.emplace_back("range_upper", rebound("a.price < 40"));
  fleet.emplace_back("residual", rebound("a.price * 2 > a.volume"));
  fleet.emplace_back("dip_10", dip(10));
  fleet.emplace_back("dip_200", dip(200));
  return fleet;
}

using FleetResults = std::map<std::string, std::vector<RankedResult>>;

FleetResults RunSerial(const std::vector<Event>& events, bool shared,
                       Timestamp max_lateness = 0,
                       const FaultInjector* injector = nullptr) {
  EngineOptions options;
  options.shared_eval = shared;
  options.max_lateness_micros = max_lateness;
  if (injector != nullptr) {
    options.fault_policy = FaultPolicy::kSkipAndCount;
    options.fault_injector = injector;
  }
  Engine engine(options);
  EXPECT_TRUE(engine.RegisterSchema(StockGenerator::MakeSchema()).ok());
  std::map<std::string, CollectSink> sinks;
  for (const auto& [name, query] : Fleet()) {
    const Status s =
        engine.RegisterQuery(name, query, QueryOptions{}, &sinks[name]);
    EXPECT_TRUE(s.ok()) << name << ": " << s.ToString();
  }
  for (const Event& e : events) {
    const Status push = engine.Push(Event(e));
    EXPECT_TRUE(push.ok()) << push.ToString();
  }
  engine.Finish();
  EXPECT_EQ(engine.shared_eval_active(), shared && injector == nullptr)
      << "shared=" << shared;
  FleetResults out;
  for (auto& [name, sink] : sinks) out[name] = sink.results();
  return out;
}

FleetResults RunSharded(const std::vector<Event>& events, bool shared,
                        size_t num_shards, Timestamp max_lateness = 0,
                        const FaultInjector* injector = nullptr) {
  ShardedEngineOptions options;
  options.num_shards = num_shards;
  options.shared_eval = shared;
  options.max_lateness_micros = max_lateness;
  if (injector != nullptr) {
    options.fault_policy = FaultPolicy::kSkipAndCount;
    options.fault_injector = injector;
  }
  ShardedEngine engine(options);
  EXPECT_TRUE(engine.RegisterSchema(StockGenerator::MakeSchema()).ok());
  std::map<std::string, CollectSink> sinks;
  for (const auto& [name, query] : Fleet()) {
    const Status s =
        engine.RegisterQuery(name, query, QueryOptions{}, &sinks[name]);
    EXPECT_TRUE(s.ok()) << name << ": " << s.ToString();
  }
  for (const Event& e : events) {
    const Status push = engine.Push(Event(e));
    EXPECT_TRUE(push.ok()) << push.ToString();
  }
  engine.Finish();
  FleetResults out;
  for (auto& [name, sink] : sinks) out[name] = sink.results();
  return out;
}

void ExpectIdentical(const FleetResults& expected, const FleetResults& actual,
                     const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (const auto& [name, exp] : expected) {
    const auto it = actual.find(name);
    ASSERT_NE(it, actual.end()) << label << " missing " << name;
    const auto& act = it->second;
    ASSERT_EQ(exp.size(), act.size()) << label << " query " << name;
    for (size_t i = 0; i < exp.size(); ++i) {
      const std::string at = label + " " + name + " @" + std::to_string(i);
      EXPECT_EQ(exp[i].window_id, act[i].window_id) << at;
      EXPECT_EQ(exp[i].rank, act[i].rank) << at;
      EXPECT_EQ(exp[i].provisional, act[i].provisional) << at;
      EXPECT_EQ(exp[i].match.first_ts, act[i].match.first_ts) << at;
      EXPECT_EQ(exp[i].match.last_ts, act[i].match.last_ts) << at;
      EXPECT_EQ(exp[i].match.last_sequence, act[i].match.last_sequence) << at;
      EXPECT_DOUBLE_EQ(exp[i].match.score, act[i].match.score) << at;
      EXPECT_EQ(exp[i].match.row, act[i].match.row) << at;
    }
  }
}

size_t TotalResults(const FleetResults& r) {
  size_t n = 0;
  for (const auto& [name, results] : r) n += results.size();
  return n;
}

TEST(MultiQueryEquivalenceTest, SharedSerialIdenticalToUnshared) {
  for (uint64_t seed : {42u, 7u}) {
    const auto events = StockEvents(seed, 4000);
    const auto baseline = RunSerial(events, /*shared=*/false);
    EXPECT_GT(TotalResults(baseline), 0u) << "weak workload";
    ExpectIdentical(baseline, RunSerial(events, /*shared=*/true),
                    "serial seed=" + std::to_string(seed));
  }
}

TEST(MultiQueryEquivalenceTest, SharedShardedIdenticalToUnsharedSerial) {
  const auto events = StockEvents(42, 3000);
  const auto baseline = RunSerial(events, /*shared=*/false);
  EXPECT_GT(TotalResults(baseline), 0u) << "weak workload";
  for (size_t shards : {1u, 2u, 4u}) {
    ExpectIdentical(baseline, RunSharded(events, /*shared=*/true, shards),
                    "sharded shared shards=" + std::to_string(shards));
    ExpectIdentical(baseline, RunSharded(events, /*shared=*/false, shards),
                    "sharded unshared shards=" + std::to_string(shards));
  }
}

TEST(MultiQueryEquivalenceTest, IdenticalUnderInjectedFaults) {
  // An armed injector degrades the shared path to full per-query visits so
  // the schedule fires at per-query-path positions; output must still be
  // identical to the unshared faulted run.
  const auto events = StockEvents(42, 3000);
  const std::vector<uint64_t> poison_keys = {7, 100, 101, 555, 1500, 2999};

  FaultInjector baseline_injector(1);
  baseline_injector.ArmKeys(fault_points::kEvalPoison, poison_keys);
  const auto baseline =
      RunSerial(events, /*shared=*/false, 0, &baseline_injector);
  EXPECT_GT(TotalResults(baseline), 0u) << "weak faulted workload";

  FaultInjector shared_injector(1);
  shared_injector.ArmKeys(fault_points::kEvalPoison, poison_keys);
  ExpectIdentical(baseline,
                  RunSerial(events, /*shared=*/true, 0, &shared_injector),
                  "faulted serial shared");

  FaultInjector sharded_injector(1);
  sharded_injector.ArmKeys(fault_points::kEvalPoison, poison_keys);
  ExpectIdentical(
      baseline,
      RunSharded(events, /*shared=*/true, 2, 0, &sharded_injector),
      "faulted sharded shared");
}

// Shuffles within consecutive event-time blocks of span <= bound (the
// disorder_test idiom): every event arrives within `bound` of in-order.
std::vector<Event> BlockShuffle(const std::vector<Event>& events,
                                Timestamp bound, uint64_t seed) {
  std::vector<Event> out = events;
  std::mt19937_64 rng(seed);
  size_t block_start = 0;
  for (size_t i = 0; i <= out.size(); ++i) {
    if (i == out.size() ||
        out[i].timestamp() - out[block_start].timestamp() > bound) {
      for (size_t j = i; j > block_start + 1; --j) {
        std::uniform_int_distribution<size_t> pick(block_start, j - 1);
        std::swap(out[pick(rng)], out[j - 1]);
      }
      block_start = i;
    }
  }
  return out;
}

TEST(MultiQueryEquivalenceTest, IdenticalUnderDisorder) {
  constexpr Timestamp kLateness = 5000;  // 5ms, a few events deep
  const auto events = StockEvents(42, 3000);
  const auto shuffled = BlockShuffle(events, kLateness, 1234);
  const auto baseline = RunSerial(events, /*shared=*/false);
  EXPECT_GT(TotalResults(baseline), 0u) << "weak workload";
  ExpectIdentical(baseline,
                  RunSerial(shuffled, /*shared=*/true, kLateness),
                  "disorder serial shared");
  ExpectIdentical(baseline,
                  RunSharded(shuffled, /*shared=*/true, 2, kLateness),
                  "disorder sharded shared");
}

TEST(MultiQueryEquivalenceTest, SharingCountersAreLive) {
  const auto events = StockEvents(42, 2000);
  EngineOptions options;
  options.shared_eval = true;
  Engine engine(options);
  ASSERT_TRUE(engine.RegisterSchema(StockGenerator::MakeSchema()).ok());
  std::map<std::string, CollectSink> sinks;
  for (const auto& [name, query] : Fleet()) {
    ASSERT_TRUE(
        engine.RegisterQuery(name, query, QueryOptions{}, &sinks[name]).ok());
  }
  for (const Event& e : events) ASSERT_TRUE(engine.Push(Event(e)).ok());
  engine.Finish();

  const MetricsSnapshot snap = engine.Snapshot();
  EXPECT_TRUE(snap.sharing.shared_eval);
  // Two dedups: the equality pair (constants differ) and the dip pair
  // (thresholds differ). The range/residual rebounds have different
  // predicate *shapes* (>, >=, <, arithmetic), so each keeps its own
  // template: 8 queries, 6 live templates.
  EXPECT_EQ(snap.sharing.queries_deduped, 2u);
  EXPECT_EQ(snap.sharing.live_templates, 6u);
  EXPECT_EQ(snap.sharing.predindex_probes, events.size());
  EXPECT_GT(snap.sharing.predindex_candidates, 0u);
  // Candidates < probes * fleet-size: the index actually rules queries out.
  EXPECT_LT(snap.sharing.predindex_candidates, events.size() * Fleet().size());
  EXPECT_GT(snap.sharing.shared_window_buffers, 0u);
  // Per-query event counts match the routed stream even though the index
  // skipped most matcher visits.
  for (const auto& q : snap.queries) {
    EXPECT_EQ(q.metrics.events, events.size()) << q.name;
  }
  // Serialization carries the block.
  EXPECT_NE(snap.ToJson().find("\"sharing\""), std::string::npos);
  EXPECT_NE(snap.ToString().find("shared_eval=on"), std::string::npos);
}

TEST(MultiQueryEquivalenceTest, ShardedSharingCountersAreLive) {
  const auto events = StockEvents(42, 2000);
  ShardedEngineOptions options;
  options.num_shards = 2;
  options.shared_eval = true;
  ShardedEngine engine(options);
  ASSERT_TRUE(engine.RegisterSchema(StockGenerator::MakeSchema()).ok());
  std::map<std::string, CollectSink> sinks;
  for (const auto& [name, query] : Fleet()) {
    ASSERT_TRUE(
        engine.RegisterQuery(name, query, QueryOptions{}, &sinks[name]).ok());
  }
  for (const Event& e : events) ASSERT_TRUE(engine.Push(Event(e)).ok());
  engine.Finish();

  const MetricsSnapshot snap = engine.Snapshot();
  EXPECT_TRUE(snap.sharing.shared_eval);
  EXPECT_EQ(snap.sharing.queries_deduped, 2u);
  EXPECT_EQ(snap.sharing.live_templates, 6u);
  EXPECT_EQ(snap.sharing.predindex_probes, events.size());
  EXPECT_GT(snap.sharing.predindex_candidates, 0u);
}

// Hot add/remove: removing one of two template-sharing queries mid-stream
// must leave the survivor's output untouched and must not tear down the
// shared template until the last holder goes.
TEST(MultiQueryEquivalenceTest, HotRemoveKeepsTemplateAndOutput) {
  const auto events = StockEvents(42, 4000);
  const std::string q_keep =
      "SELECT a.symbol, a.price, b.price FROM Stock "
      "MATCH PATTERN SEQ(a, b) PARTITION BY symbol "
      "WHERE a.price > 20 AND b.price > a.price "
      "WITHIN 10 MILLISECONDS "
      "RANK BY b.price - a.price DESC LIMIT 5 EMIT ON WINDOW CLOSE";
  const std::string q_drop =
      "SELECT a.symbol, a.price, b.price FROM Stock "
      "MATCH PATTERN SEQ(a, b) PARTITION BY symbol "
      "WHERE a.price > 500 AND b.price > a.price "
      "WITHIN 10 MILLISECONDS "
      "RANK BY b.price - a.price DESC LIMIT 5 EMIT ON WINDOW CLOSE";

  // Reference: the surviving query alone over the full stream.
  Engine ref((EngineOptions()));
  ASSERT_TRUE(ref.RegisterSchema(StockGenerator::MakeSchema()).ok());
  CollectSink ref_sink;
  ASSERT_TRUE(ref.RegisterQuery("keep", q_keep, QueryOptions{}, &ref_sink).ok());
  for (const Event& e : events) ASSERT_TRUE(ref.Push(Event(e)).ok());
  ref.Finish();
  ASSERT_FALSE(ref_sink.results().empty()) << "weak workload";

  Engine engine((EngineOptions()));
  ASSERT_TRUE(engine.RegisterSchema(StockGenerator::MakeSchema()).ok());
  CollectSink keep_sink, drop_sink;
  ASSERT_TRUE(
      engine.RegisterQuery("keep", q_keep, QueryOptions{}, &keep_sink).ok());
  ASSERT_TRUE(
      engine.RegisterQuery("drop", q_drop, QueryOptions{}, &drop_sink).ok());
  // Both queries canonicalize to one template.
  EXPECT_EQ(engine.template_registry().live_templates(), 1u);
  EXPECT_EQ(engine.GetQuery("keep").value()->nfa_template().get(),
            engine.GetQuery("drop").value()->nfa_template().get());

  const size_t half = events.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(engine.Push(Event(events[i])).ok());
  }
  ASSERT_TRUE(engine.RemoveQuery("drop").ok());
  // The survivor still holds the template.
  EXPECT_EQ(engine.template_registry().live_templates(), 1u);
  for (size_t i = half; i < events.size(); ++i) {
    ASSERT_TRUE(engine.Push(Event(events[i])).ok());
  }
  engine.Finish();

  const auto& exp = ref_sink.results();
  const auto& act = keep_sink.results();
  ASSERT_EQ(exp.size(), act.size());
  for (size_t i = 0; i < exp.size(); ++i) {
    EXPECT_EQ(exp[i].window_id, act[i].window_id) << i;
    EXPECT_EQ(exp[i].rank, act[i].rank) << i;
    EXPECT_DOUBLE_EQ(exp[i].match.score, act[i].match.score) << i;
    EXPECT_EQ(exp[i].match.row, act[i].match.row) << i;
  }

  ASSERT_TRUE(engine.RemoveQuery("keep").ok());
  EXPECT_EQ(engine.template_registry().live_templates(), 0u);
}

}  // namespace
}  // namespace cepr
