// Fault containment under a deterministic injected fault schedule: the
// same seeded FaultInjector drives the serial and sharded engines, so the
// two must agree on exactly which events were poisoned — and, under
// kSkipAndCount, still produce identical ranked output. Also covers the
// bounded-backpressure path: a wedged shard must trip the stall budget and
// fail Push with a diagnosable Status instead of hanging the ingest thread.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/fault.h"
#include "runtime/engine.h"
#include "runtime/sharded_engine.h"
#include "testing/helpers.h"
#include "workload/stock.h"

namespace cepr {
namespace {

using testing::StockSchema;
using testing::Tick;

constexpr char kStockQuery[] =
    "SELECT a.symbol, a.price, MIN(b.price), c.price "
    "FROM Stock MATCH PATTERN SEQ(a, b+, c) "
    "PARTITION BY symbol "
    "WHERE b[i].price < b[i-1].price AND b[1].price < a.price "
    "  AND c.price > a.price "
    "WITHIN 100 MILLISECONDS "
    "RANK BY (a.price - MIN(b.price)) / a.price DESC "
    "LIMIT 10 EMIT ON WINDOW CLOSE";

// Stream sequence numbers to poison; both engines stamp sequences in
// arrival order, so these identify the same events in either mode.
const std::vector<uint64_t> kPoisonKeys = {7, 100, 101, 555, 1500, 3999};

struct StockStream {
  SchemaPtr schema;
  std::vector<Event> events;
};

StockStream StockEvents(size_t n = 4000) {
  StockOptions options;
  options.num_symbols = 6;
  options.v_probability = 0.03;
  options.base.interval_micros = 1000;
  StockGenerator gen(options);
  return {gen.schema(), gen.Take(n)};
}

struct EngineOutcome {
  std::vector<RankedResult> results;
  uint64_t quarantined = 0;
  Status first_error;  // first failing Push (OK if none failed)
};

EngineOutcome RunSerial(const StockStream& stream, FaultPolicy policy,
                        const FaultInjector* injector) {
  EngineOptions engine_options;
  engine_options.fault_policy = policy;
  engine_options.fault_injector = injector;
  Engine engine(engine_options);
  EXPECT_TRUE(engine.RegisterSchema(stream.schema).ok());
  CollectSink sink;
  EXPECT_TRUE(
      engine.RegisterQuery("q", kStockQuery, QueryOptions{}, &sink).ok());
  EngineOutcome outcome;
  for (const Event& e : stream.events) {
    const Status s = engine.Push(Event(e));
    if (!s.ok() && outcome.first_error.ok()) outcome.first_error = s;
  }
  engine.Finish();
  outcome.results = sink.results();
  outcome.quarantined = engine.GetQueryMetrics("q")->matcher.events_quarantined;
  return outcome;
}

EngineOutcome RunSharded(const StockStream& stream, FaultPolicy policy,
                         const FaultInjector* injector, size_t num_shards) {
  ShardedEngineOptions engine_options;
  engine_options.num_shards = num_shards;
  engine_options.fault_policy = policy;
  engine_options.fault_injector = injector;
  ShardedEngine engine(engine_options);
  EXPECT_TRUE(engine.RegisterSchema(stream.schema).ok());
  CollectSink sink;
  EXPECT_TRUE(
      engine.RegisterQuery("q", kStockQuery, QueryOptions{}, &sink).ok());
  EngineOutcome outcome;
  for (const Event& e : stream.events) {
    const Status s = engine.Push(Event(e));
    if (!s.ok() && outcome.first_error.ok()) outcome.first_error = s;
  }
  engine.Finish();
  if (outcome.first_error.ok()) outcome.first_error = engine.first_fault();
  outcome.results = sink.results();
  outcome.quarantined = engine.GetQueryMetrics("q")->matcher.events_quarantined;
  return outcome;
}

TEST(FaultInjectionTest, SerialSkipAndCountQuarantinesAndCompletes) {
  FaultInjector injector(17);
  injector.ArmKeys(fault_points::kEvalPoison, kPoisonKeys);
  const EngineOutcome outcome =
      RunSerial(StockEvents(), FaultPolicy::kSkipAndCount, &injector);
  EXPECT_TRUE(outcome.first_error.ok()) << outcome.first_error.ToString();
  EXPECT_EQ(outcome.quarantined, kPoisonKeys.size());
  EXPECT_FALSE(outcome.results.empty())
      << "a handful of poison events must not mute the stream";
}

TEST(FaultInjectionTest, SerialFailFastSurfacesFirstPoison) {
  FaultInjector injector(17);
  injector.ArmKeys(fault_points::kEvalPoison, kPoisonKeys);
  EngineOptions engine_options;
  engine_options.fault_injector = &injector;  // kFailFast is the default
  Engine engine(engine_options);
  const StockStream stream = StockEvents(100);
  ASSERT_TRUE(engine.RegisterSchema(stream.schema).ok());
  ASSERT_TRUE(
      engine.RegisterQuery("q", kStockQuery, QueryOptions{}, nullptr).ok());
  Status failed;
  size_t failed_at = 0;
  for (size_t i = 0; i < stream.events.size() && failed.ok(); ++i) {
    failed = engine.Push(Event(stream.events[i]));
    failed_at = i;
  }
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed_at, 7u) << "must fail exactly at the first poisoned event";
  EXPECT_NE(failed.message().find("poison"), std::string::npos)
      << failed.ToString();
  engine.Finish();
}

class ShardedFaultEquivalenceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ShardedFaultEquivalenceTest, SkipAndCountIdenticalToSerial) {
  const StockStream events = StockEvents();

  // Two independently constructed injectors with the same seed and config:
  // determinism by construction, not shared state.
  FaultInjector serial_injector(23);
  serial_injector.ArmKeys(fault_points::kEvalPoison, kPoisonKeys);
  FaultInjector sharded_injector(23);
  sharded_injector.ArmKeys(fault_points::kEvalPoison, kPoisonKeys);

  const EngineOutcome serial =
      RunSerial(events, FaultPolicy::kSkipAndCount, &serial_injector);
  const EngineOutcome sharded = RunSharded(
      events, FaultPolicy::kSkipAndCount, &sharded_injector, GetParam());

  EXPECT_TRUE(serial.first_error.ok()) << serial.first_error.ToString();
  EXPECT_TRUE(sharded.first_error.ok()) << sharded.first_error.ToString();
  EXPECT_EQ(serial.quarantined, kPoisonKeys.size());
  EXPECT_EQ(sharded.quarantined, serial.quarantined)
      << "both engines must quarantine exactly the same events";

  ASSERT_EQ(serial.results.size(), sharded.results.size());
  for (size_t i = 0; i < serial.results.size(); ++i) {
    EXPECT_EQ(serial.results[i].window_id, sharded.results[i].window_id);
    EXPECT_EQ(serial.results[i].rank, sharded.results[i].rank);
    EXPECT_EQ(serial.results[i].match.score, sharded.results[i].match.score);
    EXPECT_EQ(serial.results[i].match.row, sharded.results[i].match.row);
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardedFaultEquivalenceTest,
                         ::testing::Values(1u, 2u, 4u));

TEST(ShardedFaultTest, FailFastSurfacesPoisonAndStopsIngest) {
  FaultInjector injector(23);
  injector.ArmKeys(fault_points::kEvalPoison, kPoisonKeys);
  const EngineOutcome outcome =
      RunSharded(StockEvents(), FaultPolicy::kFailFast, &injector, 2);
  ASSERT_FALSE(outcome.first_error.ok())
      << "a poisoned shard must surface its fault";
  EXPECT_NE(outcome.first_error.message().find("poison"), std::string::npos)
      << outcome.first_error.ToString();
}

TEST(ShardedFaultTest, WedgedShardTripsStallBudgetThenRecovers) {
  FaultInjector injector(5);
  injector.ArmKeys(fault_points::kShardStall, {0});  // wedge the only shard

  ShardedEngineOptions engine_options;
  engine_options.num_shards = 1;
  engine_options.queue_capacity = 16;
  engine_options.enqueue_stall_budget_ms = 50;
  engine_options.fault_injector = &injector;
  ShardedEngine engine(engine_options);
  ASSERT_TRUE(engine.RegisterSchema(StockSchema()).ok());
  CollectSink sink;
  ASSERT_TRUE(engine
                  .RegisterQuery("q",
                                 "SELECT a.price FROM Stock "
                                 "MATCH PATTERN SEQ(a, b) PARTITION BY symbol "
                                 "WITHIN 10 SECONDS RANK BY a.price DESC "
                                 "LIMIT 5 EMIT ON WINDOW CLOSE",
                                 QueryOptions{}, &sink)
                  .ok());

  // The consumer is wedged, the ring holds 16: ingest must hit the stall
  // budget within a few dozen pushes instead of spinning forever.
  Status stalled;
  Timestamp ts = 0;
  for (int i = 0; i < 200 && stalled.ok(); ++i) {
    stalled = engine.Push(Tick(ts += 10, 10.0 + i));
  }
  ASSERT_FALSE(stalled.ok()) << "wedged shard never tripped the budget";
  EXPECT_EQ(stalled.code(), StatusCode::kUnavailable) << stalled.ToString();
  EXPECT_NE(stalled.message().find("shard 0"), std::string::npos)
      << stalled.ToString();

  // Un-wedge: the shard drains its backlog and ingest recovers.
  injector.Disarm(fault_points::kShardStall);
  for (int i = 0; i < 10; ++i) {
    const Status s = engine.Push(Tick(ts += 10, 500.0 + i));
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  engine.Finish();
  EXPECT_FALSE(sink.results().empty());

  uint64_t tripped = 0;
  uint64_t stall_us = 0;
  for (const ShardStats& s : engine.shard_stats()) {
    tripped += s.stalls_tripped;
    stall_us += s.stall_us;
  }
  EXPECT_GE(tripped, 1u);
  EXPECT_GT(stall_us, 0u);
  const std::string json = engine.Snapshot().ToJson();
  EXPECT_NE(json.find("\"stalls_tripped\":"), std::string::npos);
  EXPECT_NE(json.find("\"stall_us\":"), std::string::npos);
}

TEST(ShardedFaultTest, RingFullProbeCountsEnqueueStalls) {
  FaultInjector injector(9);
  injector.ArmRate(fault_points::kShardRingFull, 1.0);

  ShardedEngineOptions engine_options;
  engine_options.num_shards = 2;
  engine_options.fault_injector = &injector;
  ShardedEngine engine(engine_options);
  ASSERT_TRUE(engine.RegisterSchema(StockSchema()).ok());
  CollectSink sink;
  ASSERT_TRUE(engine
                  .RegisterQuery("q",
                                 "SELECT a.price FROM Stock "
                                 "MATCH PATTERN SEQ(a, b) PARTITION BY symbol "
                                 "WITHIN 10 SECONDS RANK BY a.price DESC "
                                 "LIMIT 5 EMIT ON WINDOW CLOSE",
                                 QueryOptions{}, &sink)
                  .ok());
  Timestamp ts = 0;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(engine.Push(Tick(ts += 10, 10.0 + i)).ok());
  }
  engine.Finish();
  EXPECT_GT(injector.fires(fault_points::kShardRingFull), 0u);
  uint64_t stalls = 0;
  for (const ShardStats& s : engine.shard_stats()) stalls += s.enqueue_stalls;
  EXPECT_GT(stalls, 0u) << "the ring-full probe must be visible in metrics";
}

}  // namespace
}  // namespace cepr
