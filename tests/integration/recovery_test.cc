// Crash-injection recovery suite for the durability layer: a process that
// checkpoints periodically and journals arrivals to a WAL, then dies at an
// arbitrary point — mid-stream, mid-WAL-append (torn tail), mid-checkpoint
// (partial temp file), even mid-recovery — must, after Restore(), produce
// ranked output bit-identical to an uninterrupted run. The guarantee under
// test: prefix delivered at the last published snapshot + everything the
// recovered engine emits == the uninterrupted run, result for result
// (scores, ranks, tie-order, windows, rows), on the serial engine and on
// the sharded engine at every shard count, with and without bounded
// disorder and an injected eval-fault schedule.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/random.h"
#include "runtime/engine.h"
#include "runtime/sharded_engine.h"
#include "workload/forkheavy.h"
#include "workload/stock.h"

namespace cepr {
namespace {

constexpr char kStockQuery[] =
    "SELECT a.symbol, a.price, MIN(b.price), c.price "
    "FROM Stock MATCH PATTERN SEQ(a, b+, c) "
    "PARTITION BY symbol "
    "WHERE b[i].price < b[i-1].price AND b[1].price < a.price "
    "  AND c.price > a.price "
    "WITHIN 100 MILLISECONDS "
    "RANK BY (a.price - MIN(b.price)) / a.price DESC "
    "LIMIT 10 EMIT ON WINDOW CLOSE";

// 20 ms of tolerated disorder over a 1 ms event interval.
constexpr Timestamp kLateness = 20000;

struct StockStream {
  SchemaPtr schema;
  std::vector<Event> events;
  std::string query = kStockQuery;
};

StockStream InOrderStock(size_t n = 6000) {
  StockOptions options;
  options.num_symbols = 6;
  options.v_probability = 0.03;
  options.base.interval_micros = 1000;
  StockGenerator gen(options);
  return {gen.schema(), gen.Take(n)};
}

// Dag-eligible fork-heavy stream: checkpoints taken mid-window capture live
// DAG groups in the matcher and pending lazy sets in the ranker, so
// recovery exercises the v2 snapshot sections end to end.
StockStream DagStream(size_t n = 4000) {
  ForkHeavyOptions options;
  options.num_streams = 2;
  options.anchor_probability = 0.15;
  options.base.interval_micros = 1000;
  ForkHeavyGenerator gen(options);
  return {gen.schema(), gen.Take(n),
          "SELECT a.price, SUM(b.price), COUNT(b) "
          "FROM ForkTick MATCH PATTERN SEQ(a, b+) "
          "USING SKIP_TILL_ANY_MATCH "
          "PARTITION BY sym "
          "WHERE a.anchor = 1 AND b[i].anchor = 0 "
          "WITHIN 12 MILLISECONDS "
          "RANK BY SUM(b.price) DESC "
          "LIMIT 5 EMIT ON WINDOW CLOSE"};
}

// Schema identity is per-engine: a restored engine holds its own
// deserialized Schema object, so a recovering process rebinds events to
// the engine's handle (GetSchema) — exactly what a real ingest path does.
template <typename E>
Event Rebind(E* engine, const Event& e) {
  Event out(engine->GetSchema(e.schema()->name()).value(), e.timestamp(),
            e.values());
  out.set_type_tag(e.type_tag());
  return out;
}

// Shuffles within consecutive event-time blocks of span <= bound, so every
// displacement stays within the reorder buffer's lateness bound.
std::vector<Event> BlockShuffle(const std::vector<Event>& events,
                                Timestamp bound, uint64_t seed) {
  std::vector<Event> out;
  out.reserve(events.size());
  for (const Event& e : events) out.push_back(Event(e));
  Random rng(seed);
  for (size_t lo = 0; lo < out.size();) {
    size_t hi = lo;
    while (hi + 1 < out.size() &&
           out[hi + 1].timestamp() - out[lo].timestamp() <= bound) {
      ++hi;
    }
    for (size_t i = hi; i > lo; --i) {
      const size_t j = lo + rng.Uniform(static_cast<uint64_t>(i - lo + 1));
      std::swap(out[i], out[j]);
    }
    lo = hi + 1;
  }
  return out;
}

// Engine factories: shards == 0 selects the serial engine (and the shard
// count is ignored by its specialization).
template <typename E>
std::unique_ptr<E> MakeEngine(size_t shards, Timestamp lateness,
                              const FaultInjector* injector);

template <>
std::unique_ptr<Engine> MakeEngine<Engine>(size_t /*shards*/,
                                           Timestamp lateness,
                                           const FaultInjector* injector) {
  EngineOptions options;
  options.max_lateness_micros = lateness;
  if (injector != nullptr) {
    options.fault_injector = injector;
    options.fault_policy = FaultPolicy::kSkipAndCount;
  }
  return std::make_unique<Engine>(options);
}

template <>
std::unique_ptr<ShardedEngine> MakeEngine<ShardedEngine>(
    size_t shards, Timestamp lateness, const FaultInjector* injector) {
  ShardedEngineOptions options;
  options.num_shards = shards;
  options.max_lateness_micros = lateness;
  if (injector != nullptr) {
    options.fault_injector = injector;
    options.fault_policy = FaultPolicy::kSkipAndCount;
  }
  return std::make_unique<ShardedEngine>(options);
}

template <typename E>
std::vector<RankedResult> RunReference(size_t shards, const StockStream& stream,
                                       const std::vector<Event>& arrivals,
                                       Timestamp lateness,
                                       const FaultInjector* injector) {
  auto engine = MakeEngine<E>(shards, lateness, injector);
  EXPECT_TRUE(engine->RegisterSchema(stream.schema).ok());
  CollectSink sink;
  QueryOptions options;
  options.ranker = RankerPolicy::kPruned;
  EXPECT_TRUE(engine->RegisterQuery("q", stream.query, options, &sink).ok());
  for (const Event& e : arrivals) {
    const Status s = engine->Push(Event(e));
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  engine->Finish();
  return sink.results();
}

struct CrashPlan {
  size_t kill_at = 0;      // arrival index where the process dies
  size_t ckpt_every = 0;   // checkpoint cadence in arrivals (0 = initial only)
  Timestamp lateness = 0;  // reorder bound for both runs
  // Restore-time crash: arm restore.partial_replay for the first recovery
  // attempt, expect it to fail, then retry from a second pristine engine.
  bool crash_during_recovery = false;
};

// Runs the doomed process (checkpoint + WAL, killed per plan / injection),
// then a recovering process, and asserts prefix-at-cut + recovered output
// is bit-identical to the uninterrupted reference.
template <typename E>
void RunCrashRecovery(size_t shards, const StockStream& stream,
                      const std::vector<Event>& arrivals, const CrashPlan& plan,
                      FaultInjector* injector, const std::string& label) {
  SCOPED_TRACE(label);
  const std::vector<RankedResult> reference = RunReference<E>(
      shards, stream, arrivals, plan.lateness, injector);
  ASSERT_FALSE(reference.empty()) << "workload produced no results; weak test";

  const std::string snap = ::testing::TempDir() + label + ".ckpt";
  const std::string wal = ::testing::TempDir() + label + ".wal";
  std::remove(snap.c_str());
  std::remove((snap + ".tmp").c_str());
  std::remove(wal.c_str());

  // --- Phase 1: the doomed process. ---------------------------------------
  std::vector<RankedResult> prefix;  // delivered at the last published snapshot
  size_t crashed_at = plan.kill_at;
  uint64_t wal_records_at_crash = 0;
  {
    auto engine = MakeEngine<E>(shards, plan.lateness, injector);
    ASSERT_TRUE(engine->RegisterSchema(stream.schema).ok());
    CollectSink sink;
    QueryOptions options;
    options.ranker = RankerPolicy::kPruned;
    ASSERT_TRUE(engine->RegisterQuery("q", stream.query, options, &sink).ok());
    ASSERT_TRUE(engine->OpenWal(wal).ok());

    size_t results_at_cut = 0;
    const auto take_checkpoint = [&]() {
      const Status s = engine->Checkpoint(snap);
      if (s.ok()) {
        results_at_cut = sink.results().size();
      } else {
        // Only the injected mid-write kill may fail a checkpoint here; the
        // previously published snapshot (and its cut) must stand.
        EXPECT_EQ(s.code(), StatusCode::kIoError) << s.ToString();
      }
    };
    take_checkpoint();  // empty-state snapshot: recovery always has a base

    for (size_t i = 0; i < plan.kill_at; ++i) {
      const Status s = engine->Push(Event(arrivals[i]));
      if (!s.ok()) {
        // The WAL append died mid-frame (torn tail): the journal ends in a
        // partial record and this arrival was never applied — the process
        // dies here.
        ASSERT_EQ(s.code(), StatusCode::kUnavailable) << s.ToString();
        crashed_at = i;
        break;
      }
      if (plan.ckpt_every != 0 && (i + 1) % plan.ckpt_every == 0) {
        take_checkpoint();
      }
    }
    wal_records_at_crash = engine->durability().wal_records_appended;
    prefix.assign(sink.results().begin(),
                  sink.results().begin() +
                      static_cast<ptrdiff_t>(results_at_cut));
    // Process dies: no Finish(), no Flush() — the engine (and all its
    // in-memory run state) is simply destroyed. Only snap + wal survive.
  }
  // The crash already happened; the injected durability faults must not
  // re-fire against the recovered process.
  injector->Disarm(fault_points::kWalTornTail);
  injector->Disarm(fault_points::kCkptKillMidWrite);
  injector->Disarm(fault_points::kFsyncParentDir);

  // --- Phase 2: the recovering process. -----------------------------------
  CollectSink recovered_sink;
  const SinkResolver resolver = [&](const std::string& name) -> Sink* {
    EXPECT_EQ(name, "q");
    return &recovered_sink;
  };

  if (plan.crash_during_recovery) {
    // First recovery attempt dies mid-replay; a second pristine engine must
    // then recover from the very same untouched snapshot + journal.
    injector->ArmKeys(fault_points::kRestorePartialReplay, {3});
    auto doomed_recovery = MakeEngine<E>(shards, plan.lateness, injector);
    const Status s = doomed_recovery->Restore(snap, wal, resolver);
    ASSERT_EQ(s.code(), StatusCode::kUnavailable) << s.ToString();
    injector->Disarm(fault_points::kRestorePartialReplay);
    recovered_sink.Clear();
  }

  auto engine = MakeEngine<E>(shards, plan.lateness, injector);
  const Status restored = engine->Restore(snap, wal, resolver);
  ASSERT_TRUE(restored.ok()) << restored.ToString();
  EXPECT_LE(engine->durability().recovery_events_replayed,
            wal_records_at_crash);
  for (size_t i = crashed_at; i < arrivals.size(); ++i) {
    const Status s = engine->Push(Rebind(engine.get(), arrivals[i]));
    ASSERT_TRUE(s.ok()) << s.ToString() << " @" << i;
  }
  engine->Finish();

  // --- The invariant: prefix at cut + recovered == uninterrupted run. -----
  std::vector<RankedResult> combined = prefix;
  combined.insert(combined.end(), recovered_sink.results().begin(),
                  recovered_sink.results().end());
  ASSERT_EQ(reference.size(), combined.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(reference[i].window_id, combined[i].window_id) << "@" << i;
    EXPECT_EQ(reference[i].rank, combined[i].rank) << "@" << i;
    EXPECT_EQ(reference[i].provisional, combined[i].provisional) << "@" << i;
    EXPECT_EQ(reference[i].match.first_ts, combined[i].match.first_ts)
        << "@" << i;
    EXPECT_EQ(reference[i].match.last_ts, combined[i].match.last_ts)
        << "@" << i;
    EXPECT_EQ(reference[i].match.last_sequence, combined[i].match.last_sequence)
        << "@" << i;
    // Bit-identical, not approximately equal: recovery re-derives scores
    // from restored state, and any drift is a serialization bug.
    EXPECT_EQ(reference[i].match.score, combined[i].match.score) << "@" << i;
    EXPECT_EQ(reference[i].match.row, combined[i].match.row) << "@" << i;
  }
}

void RunCrashRecoveryAnyEngine(size_t shards, const StockStream& stream,
                               const std::vector<Event>& arrivals,
                               const CrashPlan& plan, FaultInjector* injector,
                               const std::string& label) {
  if (shards == 0) {
    RunCrashRecovery<Engine>(0, stream, arrivals, plan, injector, label);
  } else {
    RunCrashRecovery<ShardedEngine>(shards, stream, arrivals, plan, injector,
                                    label);
  }
}

// Shard-count parameter: 0 = serial engine, otherwise sharded.
class RecoveryTest : public ::testing::TestWithParam<size_t> {
 protected:
  std::string Label(const std::string& name) const {
    return "recovery_" + name + "_s" + std::to_string(GetParam());
  }
};

TEST_P(RecoveryTest, KillAtEveryPhaseOfTheStream) {
  const StockStream stream = InOrderStock();
  // Early (one checkpoint behind), middle, and just before the end.
  for (const size_t kill_at : {1500u, 3700u, 5990u}) {
    FaultInjector injector(7);
    CrashPlan plan;
    plan.kill_at = kill_at;
    plan.ckpt_every = 1000;
    RunCrashRecoveryAnyEngine(GetParam(), stream, stream.events, plan,
                              &injector,
                              Label("kill" + std::to_string(kill_at)));
  }
}

TEST_P(RecoveryTest, KillBeforeFirstEvent) {
  const StockStream stream = InOrderStock(3000);
  FaultInjector injector(7);
  CrashPlan plan;
  plan.kill_at = 0;  // dies right after the empty-state checkpoint
  plan.ckpt_every = 1000;
  RunCrashRecoveryAnyEngine(GetParam(), stream, stream.events, plan, &injector,
                            Label("kill0"));
}

TEST_P(RecoveryTest, NoPeriodicCheckpointsFullWalReplay) {
  const StockStream stream = InOrderStock(3000);
  FaultInjector injector(7);
  CrashPlan plan;
  plan.kill_at = 2400;
  plan.ckpt_every = 0;  // only the empty-state snapshot: replay all arrivals
  RunCrashRecoveryAnyEngine(GetParam(), stream, stream.events, plan, &injector,
                            Label("fullreplay"));
}

TEST_P(RecoveryTest, TornWalTail) {
  const StockStream stream = InOrderStock();
  FaultInjector injector(7);
  // The process dies mid-append of record 2718: a partial frame trails the
  // journal and that arrival was never applied.
  injector.ArmKeys(fault_points::kWalTornTail, {2718});
  CrashPlan plan;
  plan.kill_at = stream.events.size();  // would run to completion otherwise
  plan.ckpt_every = 1000;
  RunCrashRecoveryAnyEngine(GetParam(), stream, stream.events, plan, &injector,
                            Label("torn"));
}

TEST_P(RecoveryTest, CheckpointKilledMidWrite) {
  const StockStream stream = InOrderStock();
  FaultInjector injector(7);
  // Checkpoint attempts 2 and 3 (events 2000, 3000) die mid-temp-write:
  // the published snapshot stays at attempt 1 (event 1000), so recovery
  // replays 2500 journal records.
  injector.ArmKeys(fault_points::kCkptKillMidWrite, {2, 3});
  CrashPlan plan;
  plan.kill_at = 3500;
  plan.ckpt_every = 1000;
  RunCrashRecoveryAnyEngine(GetParam(), stream, stream.events, plan, &injector,
                            Label("ckptkill"));
}

TEST_P(RecoveryTest, CheckpointKilledInPublishWindow) {
  const StockStream stream = InOrderStock();
  FaultInjector injector(7);
  // Checkpoint attempts 2 and 3 (events 2000, 3000) die in the publish
  // window: the temp image is complete and fsynced, but the rename (and
  // the parent-directory fsync that would make the new filename durable)
  // never lands. A real crash there leaves "previous snapshot still
  // current" as the durable state — the bug this fault point guards was a
  // rename with NO directory fsync at all, where a well-timed power cut
  // could lose the snapshot filename even after Checkpoint() returned OK.
  injector.ArmKeys(fault_points::kFsyncParentDir, {2, 3});
  CrashPlan plan;
  plan.kill_at = 3500;
  plan.ckpt_every = 1000;
  RunCrashRecoveryAnyEngine(GetParam(), stream, stream.events, plan, &injector,
                            Label("publishkill"));
}

TEST_P(RecoveryTest, CrashDuringRecoveryThenRetry) {
  const StockStream stream = InOrderStock(4000);
  FaultInjector injector(7);
  CrashPlan plan;
  plan.kill_at = 2600;
  plan.ckpt_every = 1000;
  plan.crash_during_recovery = true;
  RunCrashRecoveryAnyEngine(GetParam(), stream, stream.events, plan, &injector,
                            Label("recoverycrash"));
}

TEST_P(RecoveryTest, BoundedDisorder) {
  const StockStream stream = InOrderStock();
  const std::vector<Event> arrivals =
      BlockShuffle(stream.events, kLateness, 0xD15);
  FaultInjector injector(7);
  CrashPlan plan;
  plan.kill_at = 3000;  // mid-block: the reorder buffer is non-empty at the cut
  plan.ckpt_every = 1000;
  plan.lateness = kLateness;
  RunCrashRecoveryAnyEngine(GetParam(), stream, arrivals, plan, &injector,
                            Label("disorder"));
}

TEST_P(RecoveryTest, DisorderPlusEvalFaultSchedule) {
  const StockStream stream = InOrderStock();
  const std::vector<Event> arrivals =
      BlockShuffle(stream.events, kLateness, 0xD16);
  FaultInjector injector(11);
  // Deterministic poisoned-predicate schedule keyed by stream sequence:
  // identical for the reference, the doomed run, and the replay.
  injector.ArmRate(fault_points::kEvalPoison, 0.002);
  CrashPlan plan;
  plan.kill_at = 3100;
  plan.ckpt_every = 1000;
  plan.lateness = kLateness;
  RunCrashRecoveryAnyEngine(GetParam(), stream, arrivals, plan, &injector,
                            Label("faultsched"));
}

TEST_P(RecoveryTest, DagModeCheckpointMidWindow) {
  // Shared-match-DAG recovery: the 12-event windows and the 700-event
  // checkpoint cadence are coprime, so snapshots land mid-window with live
  // DAG groups (matcher) and pending lazy sets (ranker) — the v2 sections.
  const StockStream stream = DagStream();
  for (const size_t kill_at : {900u, 2300u, 3990u}) {
    FaultInjector injector(7);
    CrashPlan plan;
    plan.kill_at = kill_at;
    plan.ckpt_every = 700;
    RunCrashRecoveryAnyEngine(GetParam(), stream, stream.events, plan,
                              &injector,
                              Label("dagkill" + std::to_string(kill_at)));
  }
}

TEST_P(RecoveryTest, DagModeDisorderAndEvalFaults) {
  const StockStream stream = DagStream();
  constexpr Timestamp kDagLateness = 5000;  // 5 ms over a 12 ms window
  const std::vector<Event> arrivals =
      BlockShuffle(stream.events, kDagLateness, 0xDA6);
  FaultInjector injector(11);
  injector.ArmRate(fault_points::kEvalPoison, 0.002);
  CrashPlan plan;
  plan.kill_at = 2500;
  plan.ckpt_every = 700;
  plan.lateness = kDagLateness;
  RunCrashRecoveryAnyEngine(GetParam(), stream, arrivals, plan, &injector,
                            Label("dagdisorder"));
}

TEST_P(RecoveryTest, TornTailUnderDisorder) {
  const StockStream stream = InOrderStock();
  const std::vector<Event> arrivals =
      BlockShuffle(stream.events, kLateness, 0xD17);
  FaultInjector injector(7);
  injector.ArmKeys(fault_points::kWalTornTail, {3333});
  CrashPlan plan;
  plan.kill_at = arrivals.size();
  plan.ckpt_every = 1000;
  plan.lateness = kLateness;
  RunCrashRecoveryAnyEngine(GetParam(), stream, arrivals, plan, &injector,
                            Label("torndisorder"));
}

INSTANTIATE_TEST_SUITE_P(Engines, RecoveryTest,
                         ::testing::Values(0, 1, 2, 4),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return info.param == 0
                                      ? std::string("serial")
                                      : "sharded" + std::to_string(info.param);
                         });

// --- Restore misuse / validation -----------------------------------------

TEST(RecoveryValidationTest, RestoreRequiresPristineEngine) {
  const StockStream stream = InOrderStock(10);
  const std::string snap = ::testing::TempDir() + "recovery_pristine.ckpt";
  {
    Engine writer;
    ASSERT_TRUE(writer.RegisterSchema(stream.schema).ok());
    ASSERT_TRUE(writer.Checkpoint(snap).ok());
  }
  Engine dirty;
  ASSERT_TRUE(dirty.RegisterSchema(stream.schema).ok());
  const Status s = dirty.Restore(snap, "", nullptr);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
}

TEST(RecoveryValidationTest, EngineKindMismatchIsRejected) {
  const StockStream stream = InOrderStock(10);
  const std::string snap = ::testing::TempDir() + "recovery_kind.ckpt";
  {
    Engine writer;
    ASSERT_TRUE(writer.RegisterSchema(stream.schema).ok());
    ASSERT_TRUE(writer.Checkpoint(snap).ok());
  }
  ShardedEngine reader;
  const Status s = reader.Restore(snap, "", nullptr);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
  reader.Finish();
}

TEST(RecoveryValidationTest, ShardCountMismatchIsRejected) {
  const StockStream stream = InOrderStock(10);
  const std::string snap = ::testing::TempDir() + "recovery_shards.ckpt";
  {
    ShardedEngineOptions options;
    options.num_shards = 2;
    ShardedEngine writer(options);
    ASSERT_TRUE(writer.RegisterSchema(stream.schema).ok());
    ASSERT_TRUE(writer.Checkpoint(snap).ok());
    writer.Finish();
  }
  ShardedEngineOptions options;
  options.num_shards = 4;
  ShardedEngine reader(options);
  const Status s = reader.Restore(snap, "", nullptr);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
  EXPECT_NE(s.ToString().find("shards"), std::string::npos) << s.ToString();
  reader.Finish();
}

TEST(RecoveryValidationTest, MissingSnapshotIsNotFound) {
  Engine engine;
  const Status s = engine.Restore(
      ::testing::TempDir() + "recovery_no_such_file.ckpt", "", nullptr);
  EXPECT_EQ(s.code(), StatusCode::kNotFound) << s.ToString();
}

TEST(RecoveryValidationTest, NullResolverDropsResultsButRecoversState) {
  // Restoring without sinks is legal (a metrics-only or drain use case):
  // state is rebuilt, results go nowhere.
  const StockStream stream = InOrderStock(2000);
  const std::string snap = ::testing::TempDir() + "recovery_nullsink.ckpt";
  const std::string wal = ::testing::TempDir() + "recovery_nullsink.wal";
  std::remove(wal.c_str());
  {
    Engine writer;
    ASSERT_TRUE(writer.RegisterSchema(stream.schema).ok());
    CollectSink sink;
    ASSERT_TRUE(
        writer.RegisterQuery("q", kStockQuery, QueryOptions{}, &sink).ok());
    ASSERT_TRUE(writer.OpenWal(wal).ok());
    for (size_t i = 0; i < 1000; ++i) {
      ASSERT_TRUE(writer.Push(Event(stream.events[i])).ok());
    }
    ASSERT_TRUE(writer.Checkpoint(snap).ok());
  }
  Engine engine;
  ASSERT_TRUE(engine.Restore(snap, wal, nullptr).ok());
  EXPECT_EQ(engine.events_ingested(), 1000u);
  for (size_t i = 1000; i < stream.events.size(); ++i) {
    ASSERT_TRUE(engine.Push(Rebind(&engine, stream.events[i])).ok());
  }
  engine.Finish();
}

}  // namespace
}  // namespace cepr
