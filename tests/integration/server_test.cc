// CeprServer integration suite. The invariants under test:
//
//  * a query deployed over TCP produces ranked output BIT-identical to an
//    in-process engine run (scores compared as exact doubles, ranks, window
//    ids, tie order, rows) — on the serial and the sharded engine;
//  * kill the server mid-stream (no final checkpoint), restart it on the
//    same snapshot + WAL directory, and the recovered subscriber's output
//    continues bit-identically — with checkpoints cut by the background
//    timer at nondeterministic points, the accounting (kSubscribe's `prior`
//    + buffered replay tail + live results) must cover the reference run
//    exactly, wherever the last cut landed;
//  * protocol robustness: torn frames, garbage bytes and malformed bodies
//    produce clean error replies or session closes — never a crash, and a
//    poisoned session never takes the server down.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "net/client.h"
#include "net/server.h"
#include "runtime/engine.h"
#include "workload/stock.h"

namespace cepr {
namespace net {
namespace {

constexpr char kStockDdl[] =
    "CREATE STREAM Stock (symbol STRING, price FLOAT RANGE [1, 1000], "
    "volume INT RANGE [1, 10000])";

constexpr char kStockQuery[] =
    "SELECT a.symbol, a.price, MIN(b.price), c.price "
    "FROM Stock MATCH PATTERN SEQ(a, b+, c) "
    "PARTITION BY symbol "
    "WHERE b[i].price < b[i-1].price AND b[1].price < a.price "
    "  AND c.price > a.price "
    "WITHIN 100 MILLISECONDS "
    "RANK BY (a.price - MIN(b.price)) / a.price DESC "
    "LIMIT 10 EMIT ON WINDOW CLOSE";

std::vector<Event> StockEvents(size_t n) {
  StockOptions options;
  options.num_symbols = 6;
  options.v_probability = 0.03;
  options.base.interval_micros = 1000;
  StockGenerator gen(options);
  return gen.Take(n);
}

/// Schema-less copy for the wire: the server re-binds the schema from the
/// session's stream binding (same convention as WAL event records).
Event WireEvent(const Event& e) {
  Event out(SchemaPtr{}, e.timestamp(), e.values());
  out.set_type_tag(e.type_tag());
  return out;
}

/// Uninterrupted in-process run: the bit-identity reference.
std::vector<RankedResult> RunReference(const std::vector<Event>& events) {
  Engine engine;
  EXPECT_TRUE(engine.ExecuteDdl(kStockDdl).ok());
  const SchemaPtr schema = engine.GetSchema("Stock").value();
  CollectSink sink;
  QueryOptions options;
  options.ranker = RankerPolicy::kPruned;
  EXPECT_TRUE(engine.RegisterQuery("q", kStockQuery, options, &sink).ok());
  for (const Event& e : events) {
    Event bound(schema, e.timestamp(), e.values());
    bound.set_type_tag(e.type_tag());
    EXPECT_TRUE(engine.Push(std::move(bound)).ok());
  }
  engine.Finish();
  return sink.results();
}

/// Asserts wire[i] == reference[offset + i], field by field, scores as
/// exact bit patterns.
void ExpectResultsMatch(const std::vector<WireResult>& wire,
                        const std::vector<RankedResult>& reference,
                        size_t offset) {
  ASSERT_LE(offset + wire.size(), reference.size());
  for (size_t i = 0; i < wire.size(); ++i) {
    const RankedResult& ref = reference[offset + i];
    EXPECT_EQ(wire[i].query, "q") << "@" << i;
    EXPECT_EQ(wire[i].window_id, ref.window_id) << "@" << i;
    EXPECT_EQ(wire[i].rank, ref.rank) << "@" << i;
    EXPECT_EQ(wire[i].provisional, ref.provisional) << "@" << i;
    EXPECT_EQ(wire[i].score, ref.match.score) << "@" << i;
    EXPECT_EQ(wire[i].first_ts, ref.match.first_ts) << "@" << i;
    EXPECT_EQ(wire[i].last_ts, ref.match.last_ts) << "@" << i;
    EXPECT_EQ(wire[i].last_sequence, ref.match.last_sequence) << "@" << i;
    EXPECT_EQ(wire[i].row, ref.match.row) << "@" << i;
  }
}

QueryOptions PrunedOptions() {
  QueryOptions options;
  options.ranker = RankerPolicy::kPruned;
  return options;
}

std::string FreshDataDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  ::mkdir(dir.c_str(), 0755);
  std::remove((dir + "/snapshot.ckpt").c_str());
  std::remove((dir + "/snapshot.ckpt.tmp").c_str());
  std::remove((dir + "/wal.log").c_str());
  return dir;
}

// --- Wire bit-identity ------------------------------------------------------

TEST(ServerTest, RankedOutputOverTcpIsBitIdenticalToInProcess) {
  const std::vector<Event> events = StockEvents(4000);
  const std::vector<RankedResult> reference = RunReference(events);
  ASSERT_FALSE(reference.empty()) << "workload produced no results; weak test";

  CeprServer server(ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  CeprClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.Ddl(kStockDdl).ok());
  ASSERT_TRUE(client.Deploy("q", kStockQuery, PrunedOptions()).ok());
  auto binding = client.BindStream("Stock");
  ASSERT_TRUE(binding.ok()) << binding.status().ToString();

  // Mix single-event and batched ingest: both paths must land identically.
  size_t i = 0;
  for (; i < events.size() / 2; ++i) {
    ASSERT_TRUE(client.Push(binding.value(), WireEvent(events[i])).ok());
  }
  std::vector<Event> batch;
  for (; i < events.size(); ++i) batch.push_back(WireEvent(events[i]));
  ASSERT_TRUE(client.PushBatch(binding.value(), batch).ok());
  ASSERT_TRUE(client.Flush().ok());
  ASSERT_TRUE(client.Finish().ok());

  const auto& wire = client.results("q");
  ASSERT_EQ(wire.size(), reference.size());
  ExpectResultsMatch(wire, reference, 0);
  server.Stop();
}

TEST(ServerTest, ShardedServerMatchesSerialReference) {
  const std::vector<Event> events = StockEvents(4000);
  const std::vector<RankedResult> reference = RunReference(events);
  ASSERT_FALSE(reference.empty());

  ServerOptions options;
  options.num_shards = 2;
  CeprServer server(options);
  ASSERT_TRUE(server.Start().ok());
  CeprClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.Ddl(kStockDdl).ok());
  // Sharded restriction: queries deploy before the first event.
  ASSERT_TRUE(client.Deploy("q", kStockQuery, PrunedOptions()).ok());
  auto binding = client.BindStream("Stock");
  ASSERT_TRUE(binding.ok());
  std::vector<Event> batch;
  for (const Event& e : events) batch.push_back(WireEvent(e));
  ASSERT_TRUE(client.PushBatch(binding.value(), batch).ok());
  ASSERT_TRUE(client.Finish().ok());

  // Serial/sharded ranked equivalence holds over the wire too.
  const auto& wire = client.results("q");
  ASSERT_EQ(wire.size(), reference.size());
  ExpectResultsMatch(wire, reference, 0);

  // Hot remove is a serial-engine feature; the sharded server refuses it
  // with a diagnosable code instead of half-applying.
  EXPECT_EQ(client.Undeploy("q").code(), StatusCode::kUnimplemented);
  server.Stop();
}

TEST(ServerTest, MetricsEndpointCountsIngest) {
  CeprServer server(ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  CeprClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.Ddl(kStockDdl).ok());
  auto binding = client.BindStream("Stock");
  ASSERT_TRUE(binding.ok());
  const std::vector<Event> events = StockEvents(100);
  for (const Event& e : events) {
    ASSERT_TRUE(client.Push(binding.value(), WireEvent(e)).ok());
  }
  auto json = client.MetricsJson();
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  EXPECT_NE(json.value().find("\"events_ingested\":100"), std::string::npos)
      << json.value();
  server.Stop();
}

TEST(ServerTest, HotDeployMidStreamSeesOnlyLaterEvents) {
  // Deploy over the wire while the stream is live: the second query joins
  // mid-stream and must equal a reference that started at the same point.
  const std::vector<Event> events = StockEvents(4000);

  Engine ref_engine;
  ASSERT_TRUE(ref_engine.ExecuteDdl(kStockDdl).ok());
  const SchemaPtr ref_schema = ref_engine.GetSchema("Stock").value();
  CollectSink ref_early;
  CollectSink ref_late;
  ASSERT_TRUE(
      ref_engine.RegisterQuery("q", kStockQuery, PrunedOptions(), &ref_early)
          .ok());
  for (size_t i = 0; i < events.size(); ++i) {
    if (i == events.size() / 2) {
      ASSERT_TRUE(ref_engine
                      .RegisterQuery("late", kStockQuery, PrunedOptions(),
                                     &ref_late)
                      .ok());
    }
    Event bound(ref_schema, events[i].timestamp(), events[i].values());
    bound.set_type_tag(events[i].type_tag());
    ASSERT_TRUE(ref_engine.Push(std::move(bound)).ok());
  }
  ref_engine.Finish();
  ASSERT_FALSE(ref_late.results().empty());

  CeprServer server(ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  CeprClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.Ddl(kStockDdl).ok());
  ASSERT_TRUE(client.Deploy("q", kStockQuery, PrunedOptions()).ok());
  auto binding = client.BindStream("Stock");
  ASSERT_TRUE(binding.ok());
  for (size_t i = 0; i < events.size(); ++i) {
    if (i == events.size() / 2) {
      ASSERT_TRUE(client.Deploy("late", kStockQuery, PrunedOptions()).ok());
    }
    ASSERT_TRUE(client.Push(binding.value(), WireEvent(events[i])).ok());
  }
  ASSERT_TRUE(client.Finish().ok());

  ASSERT_EQ(client.results("late").size(), ref_late.results().size());
  for (size_t i = 0; i < ref_late.results().size(); ++i) {
    EXPECT_EQ(client.results("late")[i].score,
              ref_late.results()[i].match.score)
        << "@" << i;
    EXPECT_EQ(client.results("late")[i].row, ref_late.results()[i].match.row)
        << "@" << i;
  }
  server.Stop();
}

// --- Kill and restart -------------------------------------------------------

// Shared body: kill the serving process at arrival `kill_at`, restart on
// the same data_dir, reconnect, finish the stream, and require exact
// coverage of the reference whatever checkpoint cadence was active.
void RunKillRestart(ServerOptions base_options, const std::string& dir_name,
                    bool explicit_midstream_checkpoint) {
  const std::vector<Event> events = StockEvents(4000);
  const size_t kill_at = 2500;
  const std::vector<RankedResult> reference = RunReference(events);
  ASSERT_FALSE(reference.empty());

  base_options.data_dir = FreshDataDir(dir_name);

  // --- Life 1: the doomed server. ---
  auto server1 = std::make_unique<CeprServer>(base_options);
  ASSERT_TRUE(server1->Start().ok());
  size_t delivered_before_crash = 0;
  {
    CeprClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server1->port()).ok());
    ASSERT_TRUE(client.Ddl(kStockDdl).ok());
    ASSERT_TRUE(client.Deploy("q", kStockQuery, PrunedOptions()).ok());
    auto binding = client.BindStream("Stock");
    ASSERT_TRUE(binding.ok());
    for (size_t i = 0; i < kill_at; ++i) {
      ASSERT_TRUE(client.Push(binding.value(), WireEvent(events[i])).ok());
      if (explicit_midstream_checkpoint && i == kill_at / 2) {
        ASSERT_TRUE(client.TriggerCheckpoint().ok());
      }
    }
    // The deploying session was auto-subscribed: it holds every result the
    // first kill_at events produced, a strict prefix of the reference.
    delivered_before_crash = client.results("q").size();
    ExpectResultsMatch(client.results("q"), reference, 0);
    server1->CrashStop();  // no final checkpoint, no WAL sync
  }
  server1.reset();

  // --- Life 2: restart on the same snapshot + WAL directory. ---
  CeprServer server2(base_options);
  const Status restarted = server2.Start();
  ASSERT_TRUE(restarted.ok()) << restarted.ToString();
  CeprClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server2.port()).ok());
  auto prior = client.Subscribe("q");
  ASSERT_TRUE(prior.ok()) << prior.status().ToString();
  // Everything after the last published cut was regenerated by WAL replay
  // and buffered in the channel; Subscribe flushed it to us. `prior` is
  // the cut position — however many timer checkpoints landed, the split
  // must be exact.
  ASSERT_TRUE(client.PollResults(200).ok());
  ASSERT_LE(prior.value(), delivered_before_crash);
  EXPECT_EQ(prior.value() + client.results("q").size(), delivered_before_crash);
  ExpectResultsMatch(client.results("q"), reference,
                     static_cast<size_t>(prior.value()));

  auto binding = client.BindStream("Stock");
  ASSERT_TRUE(binding.ok());
  for (size_t i = kill_at; i < events.size(); ++i) {
    ASSERT_TRUE(client.Push(binding.value(), WireEvent(events[i])).ok());
  }
  ASSERT_TRUE(client.Finish().ok());

  // prior + everything this session received == the uninterrupted run.
  EXPECT_EQ(prior.value() + client.results("q").size(), reference.size());
  ExpectResultsMatch(client.results("q"), reference,
                     static_cast<size_t>(prior.value()));
  server2.Stop();
}

TEST(ServerRecoveryTest, KillRestartWithTimerCheckpoints) {
  ServerOptions options;
  options.checkpoint_interval_ms = 20;  // cuts land wherever the timer fires
  RunKillRestart(options, "server_recovery_timer", false);
}

TEST(ServerRecoveryTest, KillRestartWithExplicitCheckpoint) {
  ServerOptions options;  // no timer: exactly checkpoint 0 + the forced cut
  RunKillRestart(options, "server_recovery_explicit", true);
}

TEST(ServerRecoveryTest, ShardedKillRestart) {
  const std::vector<Event> events = StockEvents(3000);
  const size_t kill_at = 2000;
  const std::vector<RankedResult> reference = RunReference(events);
  ASSERT_FALSE(reference.empty());

  ServerOptions options;
  options.num_shards = 2;
  options.data_dir = FreshDataDir("server_recovery_sharded");

  auto server1 = std::make_unique<CeprServer>(options);
  ASSERT_TRUE(server1->Start().ok());
  size_t delivered_before_crash = 0;
  {
    CeprClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server1->port()).ok());
    ASSERT_TRUE(client.Ddl(kStockDdl).ok());
    ASSERT_TRUE(client.Deploy("q", kStockQuery, PrunedOptions()).ok());
    // Sharded deploys must precede the first event; checkpoint here so the
    // snapshot carries the registration and replay is events-only.
    ASSERT_TRUE(client.TriggerCheckpoint().ok());
    auto binding = client.BindStream("Stock");
    ASSERT_TRUE(binding.ok());
    for (size_t i = 0; i < kill_at; ++i) {
      ASSERT_TRUE(client.Push(binding.value(), WireEvent(events[i])).ok());
      if (i == 1200) {
        ASSERT_TRUE(client.TriggerCheckpoint().ok());
      }
    }
    delivered_before_crash = client.results("q").size();
    ExpectResultsMatch(client.results("q"), reference, 0);
    server1->CrashStop();
  }
  server1.reset();

  CeprServer server2(options);
  ASSERT_TRUE(server2.Start().ok());
  CeprClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server2.port()).ok());
  auto prior = client.Subscribe("q");
  ASSERT_TRUE(prior.ok()) << prior.status().ToString();
  ASSERT_TRUE(client.PollResults(200).ok());
  // Sharded delivery lags pushes (windows merge opportunistically on later
  // Push calls), so the pre-crash sample is only a lower bound: `prior` is
  // the result count at the quiesced checkpoint cut, which every delivery
  // after the cut happened no earlier than.
  EXPECT_LE(prior.value(), delivered_before_crash);
  auto binding = client.BindStream("Stock");
  ASSERT_TRUE(binding.ok());
  for (size_t i = kill_at; i < events.size(); ++i) {
    ASSERT_TRUE(client.Push(binding.value(), WireEvent(events[i])).ok());
  }
  ASSERT_TRUE(client.Finish().ok());
  EXPECT_EQ(prior.value() + client.results("q").size(), reference.size());
  ExpectResultsMatch(client.results("q"), reference,
                     static_cast<size_t>(prior.value()));
  server2.Stop();
}

// --- Protocol robustness ----------------------------------------------------

/// Raw TCP socket speaking whatever bytes the test wants.
struct RawConn {
  int fd = -1;
  explicit RawConn(uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      ::close(fd);
      fd = -1;
    }
  }
  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }
  void Send(const std::string& bytes) {
    ASSERT_EQ(::write(fd, bytes.data(), bytes.size()),
              static_cast<ssize_t>(bytes.size()));
  }
};

std::string HelloPayload() {
  BinWriter w;
  w.U8(static_cast<uint8_t>(MsgType::kHello));
  w.U32(kProtocolVersion);
  return w.Take();
}

/// The server still accepts and serves a well-behaved client.
void ExpectServerAlive(CeprServer* server) {
  CeprClient probe;
  ASSERT_TRUE(probe.Connect("127.0.0.1", server->port()).ok());
  auto json = probe.MetricsJson();
  EXPECT_TRUE(json.ok()) << json.status().ToString();
}

TEST(ServerRobustnessTest, GarbageBytesNeverKillTheServer) {
  CeprServer server(ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  Random rng(0xBADF00D);
  for (int i = 0; i < 50; ++i) {
    RawConn conn(server.port());
    ASSERT_GE(conn.fd, 0);
    const size_t n = 1 + rng.Uniform(256);
    std::string junk(n, '\0');
    for (char& c : junk) c = static_cast<char>(rng.Uniform(256));
    conn.Send(junk);
    // Half the time slam the connection shut mid-stream, half the time let
    // the server answer (it sends a corrupt-frame diagnostic, then closes).
    if (i % 2 == 0) {
      std::string reply;
      (void)ReadFrame(conn.fd, &reply);
    }
  }
  ExpectServerAlive(&server);
  server.Stop();
}

TEST(ServerRobustnessTest, TornFrameGetsCorruptReplyAndClose) {
  CeprServer server(ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  RawConn conn(server.port());
  ASSERT_GE(conn.fd, 0);
  ASSERT_TRUE(WriteFrame(conn.fd, HelloPayload()).ok());
  std::string reply;
  ASSERT_TRUE(ReadFrame(conn.fd, &reply).ok());  // hello's OK reply

  // A frame header promising 1000 bytes, then silence and close: the
  // server must answer with a corrupt-frame diagnostic and drop us.
  BinWriter w;
  w.U32(1000);
  w.U32(0);
  conn.Send(w.Take());
  ::shutdown(conn.fd, SHUT_WR);
  const Status s = ReadFrame(conn.fd, &reply);
  if (s.ok()) {
    BinReader r(reply);
    uint8_t type = 0;
    uint8_t code = 0;
    std::string message;
    std::string payload;
    ASSERT_TRUE(r.U8(&type));
    ASSERT_TRUE(DecodeReplyBody(&r, &code, &message, &payload));
    EXPECT_EQ(static_cast<StatusCode>(code), StatusCode::kCorrupt) << message;
  }
  ExpectServerAlive(&server);
  server.Stop();
}

TEST(ServerRobustnessTest, MalformedBodiesAreInBandErrorsSessionSurvives) {
  CeprServer server(ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  RawConn conn(server.port());
  ASSERT_GE(conn.fd, 0);
  ASSERT_TRUE(WriteFrame(conn.fd, HelloPayload()).ok());
  std::string reply;
  ASSERT_TRUE(ReadFrame(conn.fd, &reply).ok());

  const auto roundtrip = [&](const std::string& payload) -> StatusCode {
    EXPECT_TRUE(WriteFrame(conn.fd, payload).ok());
    std::string frame;
    EXPECT_TRUE(ReadFrame(conn.fd, &frame).ok());
    BinReader r(frame);
    uint8_t type = 0;
    uint8_t code = 0;
    std::string message;
    std::string body;
    EXPECT_TRUE(r.U8(&type) && DecodeReplyBody(&r, &code, &message, &body));
    return static_cast<StatusCode>(code);
  };

  {  // kDdl with a truncated string header
    BinWriter w;
    w.U8(static_cast<uint8_t>(MsgType::kDdl));
    w.U8(0xFF);
    EXPECT_EQ(roundtrip(w.Take()), StatusCode::kCorrupt);
  }
  {  // unknown message type
    BinWriter w;
    w.U8(0x7F);
    EXPECT_EQ(roundtrip(w.Take()), StatusCode::kUnimplemented);
  }
  {  // kEvent against a binding that was never made
    BinWriter w;
    w.U8(static_cast<uint8_t>(MsgType::kEvent));
    w.U32(42);
    EXPECT_EQ(roundtrip(w.Take()), StatusCode::kInvalidArgument);
  }
  {  // trailing junk after a valid kFlush body
    BinWriter w;
    w.U8(static_cast<uint8_t>(MsgType::kFlush));
    w.U32(123);
    EXPECT_EQ(roundtrip(w.Take()), StatusCode::kInvalidArgument);
  }
  {  // a server->client type bounced back
    BinWriter w;
    w.U8(static_cast<uint8_t>(MsgType::kResult));
    EXPECT_EQ(roundtrip(w.Take()), StatusCode::kInvalidArgument);
  }
  // After five malformed bodies the same session still serves real work.
  {
    BinWriter w;
    w.U8(static_cast<uint8_t>(MsgType::kMetrics));
    EXPECT_EQ(roundtrip(w.Take()), StatusCode::kOk);
  }
  server.Stop();
}

TEST(ServerRobustnessTest, ProtocolVersionAndHelloAreEnforced) {
  CeprServer server(ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  {  // wrong version
    RawConn conn(server.port());
    ASSERT_GE(conn.fd, 0);
    BinWriter w;
    w.U8(static_cast<uint8_t>(MsgType::kHello));
    w.U32(999);
    ASSERT_TRUE(WriteFrame(conn.fd, w.Take()).ok());
    std::string frame;
    ASSERT_TRUE(ReadFrame(conn.fd, &frame).ok());
    BinReader r(frame);
    uint8_t type = 0;
    uint8_t code = 0;
    std::string message;
    std::string body;
    ASSERT_TRUE(r.U8(&type) && DecodeReplyBody(&r, &code, &message, &body));
    EXPECT_EQ(static_cast<StatusCode>(code), StatusCode::kInvalidArgument);
    EXPECT_NE(message.find("version"), std::string::npos) << message;
  }
  {  // request before hello
    RawConn conn(server.port());
    ASSERT_GE(conn.fd, 0);
    BinWriter w;
    w.U8(static_cast<uint8_t>(MsgType::kMetrics));
    ASSERT_TRUE(WriteFrame(conn.fd, w.Take()).ok());
    std::string frame;
    ASSERT_TRUE(ReadFrame(conn.fd, &frame).ok());
    BinReader r(frame);
    uint8_t type = 0;
    uint8_t code = 0;
    std::string message;
    std::string body;
    ASSERT_TRUE(r.U8(&type) && DecodeReplyBody(&r, &code, &message, &body));
    EXPECT_EQ(static_cast<StatusCode>(code), StatusCode::kInvalidArgument);
    EXPECT_NE(message.find("kHello"), std::string::npos) << message;
  }
  server.Stop();
}

TEST(ServerRobustnessTest, EngineErrorsSurfaceWithTheirCodes) {
  CeprServer server(ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  CeprClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  EXPECT_EQ(client.BindStream("NoSuchStream").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(client.Subscribe("nope").status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(client.Ddl(kStockDdl).ok());
  EXPECT_EQ(client.Ddl(kStockDdl).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(client.Deploy("bad", "SELECT FROM WHERE", QueryOptions{}).code(),
            StatusCode::kParseError);
  EXPECT_EQ(client.Undeploy("nope").code(), StatusCode::kNotFound);
  EXPECT_EQ(client.TriggerCheckpoint().code(), StatusCode::kInvalidArgument)
      << "no data_dir on this server";
  server.Stop();
}

}  // namespace
}  // namespace net
}  // namespace cepr
