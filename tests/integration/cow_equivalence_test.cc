// Property suite for the hot-path ablation modes: copy-on-write bindings,
// the run/binding arena, and the per-event predicate cache are pure
// optimizations, so every combination must produce byte-identical ranked
// output to the legacy deep-copy configuration — serial and sharded, on
// fork-heavy SKIP_TILL_ANY_MATCH workloads, under load shedding, and under
// a deterministic injected fault schedule (docs/ARCHITECTURE.md,
// "Run-state memory model").

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/fault.h"
#include "runtime/engine.h"
#include "runtime/sharded_engine.h"
#include "workload/forkheavy.h"
#include "workload/health.h"
#include "workload/stock.h"

namespace cepr {
namespace {

struct Mode {
  const char* label;
  bool cow_bindings;
  bool use_arena;
  bool predicate_cache;
  bool bytecode_eval;
};

// Mode 0 is the legacy baseline; the last mode is the full fast path (the
// default). Layered so each step isolates one mechanism (E14/E17's axes) —
// the final step swaps the recursive AST evaluator for the bytecode VM.
constexpr Mode kModes[] = {
    {"legacy-deep-copy", false, false, false, false},
    {"cow", true, false, false, false},
    {"cow+arena", true, true, false, false},
    {"cow+arena+predcache", true, true, true, false},
    {"cow+arena+predcache+bytecode", true, true, true, true},
};

struct Workload {
  const char* label;
  SchemaPtr schema;
  std::vector<Event> events;
  std::string query;
  QueryOptions options;  // matcher ablation flags overwritten per mode
};

// Fork-heavy: SKIP_TILL_ANY_MATCH forks a run at every Kleene extension,
// and the mixed event-only ("< 90") / correlated conjuncts exercise both
// predicate-cache paths. The tight run cap with bound-based shedding makes
// DeriveBounds run against COW bindings constantly.
Workload SkipTillAnyWorkload(uint64_t seed, size_t n = 2500) {
  StockOptions options;
  options.base.seed = seed;
  options.num_symbols = 4;
  options.v_probability = 0.05;
  options.base.interval_micros = 1000;
  StockGenerator gen(options);
  Workload w{"skip-any", gen.schema(), gen.Take(n),
             "SELECT a.symbol, a.price, MIN(b.price), c.price "
             "FROM Stock MATCH PATTERN SEQ(a, b+, c) "
             "USING SKIP_TILL_ANY_MATCH "
             "PARTITION BY symbol "
             "WHERE b[i].price < b[i-1].price AND b[i].price < 900 "
             "  AND b[1].price < a.price AND c.price > a.price "
             "WITHIN 100 MILLISECONDS "
             "RANK BY (a.price - MIN(b.price)) / a.price DESC "
             "LIMIT 10 EMIT ON WINDOW CLOSE",
             QueryOptions{}};
  w.options.matcher.max_active_runs = 64;
  w.options.matcher.shed_policy = ShedPolicy::kShedLowestScoreBound;
  return w;
}

// Negation + event-only begin predicate; default caps.
Workload NegationWorkload(uint64_t seed, size_t n = 4000) {
  StockOptions options;
  options.base.seed = seed;
  options.num_symbols = 4;
  options.v_probability = 0.04;
  options.base.interval_micros = 1000;
  StockGenerator gen(options);
  return Workload{"negation", gen.schema(), gen.Take(n),
                  "SELECT a.symbol, a.price, c.price "
                  "FROM Stock MATCH PATTERN SEQ(a, !n, c) "
                  "PARTITION BY symbol "
                  "WHERE a.price > 20 AND n.price > a.price "
                  "  AND c.price < a.price "
                  "WITHIN 20 MILLISECONDS "
                  "RANK BY a.price - c.price DESC "
                  "LIMIT 5 EMIT ON WINDOW CLOSE",
                  QueryOptions{}};
}

// Long Kleene chains (health vitals episodes) — deep shared prefixes.
Workload KleeneWorkload(uint64_t seed, size_t n = 4000) {
  HealthOptions options;
  options.base.seed = seed;
  options.num_patients = 6;
  options.episode_probability = 0.015;
  HealthGenerator gen(options);
  return Workload{"kleene", gen.schema(), gen.Take(n),
                  "SELECT a.patient, a.heart_rate, MAX(r.heart_rate) "
                  "FROM Vitals MATCH PATTERN SEQ(a, r+) "
                  "PARTITION BY patient "
                  "WHERE r[i].heart_rate > r[i-1].heart_rate "
                  "  AND r[1].heart_rate > a.heart_rate "
                  "WITHIN 30 SECONDS "
                  "RANK BY MAX(r.heart_rate) - a.heart_rate DESC "
                  "LIMIT 5 EMIT ON WINDOW CLOSE",
                  QueryOptions{}};
}

// Dag-eligible: trailing unbounded Kleene-plus under skip-till-any with
// event-only iteration predicates, ranked buffered emission — the shape the
// shared match DAG covers. SUM(b.price) discriminates between suffix
// subsets so lazy enumeration stays near O(k); the 12ms window bounds the
// per-run baseline's 2^t fork fan-out to test scale.
Workload DagEligibleWorkload(uint64_t seed, size_t n = 3000) {
  ForkHeavyOptions options;
  options.base.seed = seed;
  options.num_streams = 2;
  options.anchor_probability = 0.15;
  options.base.interval_micros = 1000;
  ForkHeavyGenerator gen(options);
  return Workload{"fork-heavy-dag", gen.schema(), gen.Take(n),
                  "SELECT a.price, SUM(b.price), COUNT(b) "
                  "FROM ForkTick MATCH PATTERN SEQ(a, b+) "
                  "USING SKIP_TILL_ANY_MATCH "
                  "PARTITION BY sym "
                  "WHERE a.anchor = 1 AND b[i].anchor = 0 "
                  "WITHIN 12 MILLISECONDS "
                  "RANK BY SUM(b.price) DESC "
                  "LIMIT 5 EMIT ON WINDOW CLOSE",
                  QueryOptions{}};
}

QueryOptions WithMode(QueryOptions options, const Mode& mode) {
  options.matcher.cow_bindings = mode.cow_bindings;
  options.matcher.use_arena = mode.use_arena;
  options.matcher.predicate_cache = mode.predicate_cache;
  options.matcher.bytecode_eval = mode.bytecode_eval;
  return options;
}

std::vector<RankedResult> RunSerial(const Workload& w, const Mode& mode,
                                    const FaultInjector* injector = nullptr) {
  EngineOptions engine_options;
  if (injector != nullptr) {
    engine_options.fault_policy = FaultPolicy::kSkipAndCount;
    engine_options.fault_injector = injector;
  }
  Engine engine(engine_options);
  EXPECT_TRUE(engine.RegisterSchema(w.schema).ok());
  CollectSink sink;
  const Status s =
      engine.RegisterQuery("q", w.query, WithMode(w.options, mode), &sink);
  EXPECT_TRUE(s.ok()) << s.ToString();
  for (const Event& e : w.events) {
    const Status push = engine.Push(Event(e));
    EXPECT_TRUE(push.ok()) << push.ToString();
  }
  engine.Finish();
  return sink.results();
}

std::vector<RankedResult> RunSharded(const Workload& w, const Mode& mode,
                                     size_t num_shards,
                                     const FaultInjector* injector = nullptr) {
  ShardedEngineOptions engine_options;
  engine_options.num_shards = num_shards;
  if (injector != nullptr) {
    engine_options.fault_policy = FaultPolicy::kSkipAndCount;
    engine_options.fault_injector = injector;
  }
  ShardedEngine engine(engine_options);
  EXPECT_TRUE(engine.RegisterSchema(w.schema).ok());
  CollectSink sink;
  const Status s =
      engine.RegisterQuery("q", w.query, WithMode(w.options, mode), &sink);
  EXPECT_TRUE(s.ok()) << s.ToString();
  for (const Event& e : w.events) {
    const Status push = engine.Push(Event(e));
    EXPECT_TRUE(push.ok()) << push.ToString();
  }
  engine.Finish();
  return sink.results();
}

void ExpectIdentical(const std::vector<RankedResult>& expected,
                     const std::vector<RankedResult>& actual,
                     const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].window_id, actual[i].window_id) << label << " @" << i;
    EXPECT_EQ(expected[i].rank, actual[i].rank) << label << " @" << i;
    EXPECT_EQ(expected[i].provisional, actual[i].provisional)
        << label << " @" << i;
    EXPECT_EQ(expected[i].match.first_ts, actual[i].match.first_ts)
        << label << " @" << i;
    EXPECT_EQ(expected[i].match.last_ts, actual[i].match.last_ts)
        << label << " @" << i;
    EXPECT_EQ(expected[i].match.last_sequence, actual[i].match.last_sequence)
        << label << " @" << i;
    EXPECT_DOUBLE_EQ(expected[i].match.score, actual[i].match.score)
        << label << " @" << i;
    EXPECT_EQ(expected[i].match.row, actual[i].match.row) << label << " @" << i;
  }
}

// Every ablation mode, serial and sharded at every shard count, must equal
// the legacy deep-copy serial baseline.
void CheckAllModes(const Workload& w) {
  const auto baseline = RunSerial(w, kModes[0]);
  EXPECT_FALSE(baseline.empty())
      << w.label << ": workload produced no results; weak test";
  for (const Mode& mode : kModes) {
    ExpectIdentical(baseline, RunSerial(w, mode),
                    std::string(w.label) + " serial " + mode.label);
    for (size_t shards : {1u, 2u, 4u}) {
      ExpectIdentical(baseline, RunSharded(w, mode, shards),
                      std::string(w.label) + " shards=" +
                          std::to_string(shards) + " " + mode.label);
    }
  }
}

TEST(CowEquivalenceTest, SkipTillAnyForkHeavyWithShedding) {
  for (uint64_t seed : {42u, 7u}) CheckAllModes(SkipTillAnyWorkload(seed));
}

TEST(CowEquivalenceTest, NegationPatterns) {
  CheckAllModes(NegationWorkload(42));
}

TEST(CowEquivalenceTest, LongKleeneChains) {
  CheckAllModes(KleeneWorkload(42));
}

// The shared match DAG with lazy enumeration is a pure representation
// change: ranked output must be bit-identical to the per-run path on the
// dag-eligible workload — every ablation mode, dag on and off, serial and
// sharded at every shard count.
TEST(CowEquivalenceTest, SharedMatchDagMatchesPerRunPath) {
  for (uint64_t seed : {42u, 7u}) {
    Workload off = DagEligibleWorkload(seed);
    off.options.matcher.shared_match_dag = false;
    const auto baseline = RunSerial(off, kModes[0]);
    EXPECT_FALSE(baseline.empty())
        << "dag workload produced no results; weak test";

    for (const Mode& mode : kModes) {
      for (bool dag : {false, true}) {
        Workload w = DagEligibleWorkload(seed);
        w.options.matcher.shared_match_dag = dag;
        const std::string tag = std::string("dag=") + (dag ? "on" : "off") +
                                " seed=" + std::to_string(seed) + " " +
                                mode.label;
        ExpectIdentical(baseline, RunSerial(w, mode), "serial " + tag);
        for (size_t shards : {1u, 2u, 4u}) {
          ExpectIdentical(baseline, RunSharded(w, mode, shards),
                          "shards=" + std::to_string(shards) + " " + tag);
        }
      }
    }
  }
}

// Same invariant under the injected-fault schedule: quarantines must land
// on the same events and the surviving ranked output must stay identical
// whether the trailing fan-out lives in runs or in DAG groups.
TEST(CowEquivalenceTest, SharedMatchDagIdenticalUnderInjectedFaults) {
  const std::vector<uint64_t> poison_keys = {3, 250, 251, 777, 1800, 2999};

  Workload off = DagEligibleWorkload(42);
  off.options.matcher.shared_match_dag = false;
  FaultInjector baseline_injector(1);
  baseline_injector.ArmKeys(fault_points::kEvalPoison, poison_keys);
  const auto baseline = RunSerial(off, kModes[0], &baseline_injector);
  EXPECT_FALSE(baseline.empty()) << "faulted dag workload produced no results";

  for (bool dag : {false, true}) {
    Workload w = DagEligibleWorkload(42);
    w.options.matcher.shared_match_dag = dag;
    const std::string tag = std::string("dag=") + (dag ? "on" : "off");

    FaultInjector serial_injector(1);
    serial_injector.ArmKeys(fault_points::kEvalPoison, poison_keys);
    ExpectIdentical(baseline, RunSerial(w, kModes[4], &serial_injector),
                    "faulted serial " + tag);

    FaultInjector sharded_injector(1);
    sharded_injector.ArmKeys(fault_points::kEvalPoison, poison_keys);
    ExpectIdentical(baseline, RunSharded(w, kModes[4], 2, &sharded_injector),
                    "faulted shards=2 " + tag);
  }
}

// Columnar window-buffer eviction is observationally identical to the
// per-run expiry check, on both the per-run and the dag path.
TEST(CowEquivalenceTest, ColumnarExpiryMatchesPerRunExpiry) {
  for (bool dag_workload : {false, true}) {
    Workload base = dag_workload ? DagEligibleWorkload(42)
                                 : SkipTillAnyWorkload(42);
    base.options.matcher.columnar_expiry = false;
    const auto baseline = RunSerial(base, kModes[0]);
    EXPECT_FALSE(baseline.empty()) << base.label;

    for (bool columnar : {false, true}) {
      Workload w = dag_workload ? DagEligibleWorkload(42)
                                : SkipTillAnyWorkload(42);
      w.options.matcher.columnar_expiry = columnar;
      const std::string tag = std::string(w.label) + " columnar_expiry=" +
                              (columnar ? "on" : "off");
      ExpectIdentical(baseline, RunSerial(w, kModes[4]), "serial " + tag);
      for (size_t shards : {1u, 2u}) {
        ExpectIdentical(baseline, RunSharded(w, kModes[4], shards),
                        "shards=" + std::to_string(shards) + " " + tag);
      }
    }
  }
}

TEST(CowEquivalenceTest, IdenticalUnderInjectedFaults) {
  // The PR3 fault schedule: the same poisoned events must be quarantined
  // and the surviving output must stay identical in every mode. Each run
  // gets its own injector so fire counts don't leak across runs.
  const Workload w = SkipTillAnyWorkload(42);
  const std::vector<uint64_t> poison_keys = {7, 100, 101, 555, 1500, 3999};

  FaultInjector baseline_injector(1);
  baseline_injector.ArmKeys(fault_points::kEvalPoison, poison_keys);
  const auto baseline = RunSerial(w, kModes[0], &baseline_injector);
  EXPECT_FALSE(baseline.empty()) << "faulted workload produced no results";

  for (const Mode& mode : kModes) {
    FaultInjector serial_injector(1);
    serial_injector.ArmKeys(fault_points::kEvalPoison, poison_keys);
    ExpectIdentical(baseline, RunSerial(w, mode, &serial_injector),
                    std::string("faulted serial ") + mode.label);

    FaultInjector sharded_injector(1);
    sharded_injector.ArmKeys(fault_points::kEvalPoison, poison_keys);
    ExpectIdentical(baseline, RunSharded(w, mode, 2, &sharded_injector),
                    std::string("faulted shards=2 ") + mode.label);
  }
}

// Batched columnar ingest (PushAll run accumulation + ProbeBatch screening)
// is a pure screening optimization: for every mode, PushAll with
// batch_ingest on must equal the per-event Push baseline exactly — serial
// and sharded at every shard count.
TEST(CowEquivalenceTest, BatchedIngestMatchesPerEvent) {
  const Workload w = SkipTillAnyWorkload(42);
  const auto baseline = RunSerial(w, kModes[0]);
  ASSERT_FALSE(baseline.empty());

  for (const Mode& mode : {kModes[0], kModes[4]}) {
    for (bool batch : {false, true}) {
      const std::string tag = std::string(mode.label) +
                              (batch ? " batch" : " per-event") + " PushAll";
      {
        EngineOptions engine_options;
        engine_options.batch_ingest = batch;
        Engine engine(engine_options);
        ASSERT_TRUE(engine.RegisterSchema(w.schema).ok());
        CollectSink sink;
        ASSERT_TRUE(
            engine.RegisterQuery("q", w.query, WithMode(w.options, mode), &sink)
                .ok());
        std::vector<Event> events = w.events;
        const Status s = engine.PushAll(std::move(events));
        ASSERT_TRUE(s.ok()) << s.ToString();
        engine.Finish();
        ExpectIdentical(baseline, sink.results(), "serial " + tag);
        if (batch) {
          EXPECT_GT(engine.Snapshot().sharing.batch_scan_events, 0u)
              << "batch path did not engage; weak test";
        }
      }
      for (size_t shards : {1u, 2u, 4u}) {
        ShardedEngineOptions engine_options;
        engine_options.num_shards = shards;
        engine_options.batch_ingest = batch;
        ShardedEngine engine(engine_options);
        ASSERT_TRUE(engine.RegisterSchema(w.schema).ok());
        CollectSink sink;
        ASSERT_TRUE(
            engine.RegisterQuery("q", w.query, WithMode(w.options, mode), &sink)
                .ok());
        std::vector<Event> events = w.events;
        const Status s = engine.PushAll(std::move(events));
        ASSERT_TRUE(s.ok()) << s.ToString();
        engine.Finish();
        ExpectIdentical(baseline, sink.results(),
                        "shards=" + std::to_string(shards) + " " + tag);
      }
    }
  }
}

// The new hot-path counters are deterministic per partition, so the
// sharded engine's totals must equal the serial engine's for any shard
// count — the same invariant the other matcher counters already obey.
TEST(CowEquivalenceTest, HotPathCountersMatchSerialTotals) {
  const Workload w = SkipTillAnyWorkload(42);

  const auto run = [&w](auto& engine) -> MatcherStats {
    EXPECT_TRUE(engine.RegisterSchema(w.schema).ok());
    CollectSink sink;
    EXPECT_TRUE(engine.RegisterQuery("q", w.query, w.options, &sink).ok());
    for (const Event& e : w.events) {
      EXPECT_TRUE(engine.Push(Event(e)).ok());
    }
    engine.Finish();
    return engine.GetQueryMetrics("q")->matcher;
  };

  Engine serial;
  const MatcherStats serial_stats = run(serial);
  EXPECT_GT(serial_stats.runs_cloned, 0u);
  EXPECT_GT(serial_stats.binding_nodes_allocated, 0u);
  EXPECT_GT(serial_stats.predcache_hits, 0u);
  EXPECT_GT(serial_stats.predcache_misses, 0u);

  for (size_t shards : {1u, 2u, 4u}) {
    ShardedEngineOptions options;
    options.num_shards = shards;
    ShardedEngine sharded(options);
    const MatcherStats sharded_stats = run(sharded);
    EXPECT_EQ(serial_stats.runs_cloned, sharded_stats.runs_cloned)
        << "shards=" << shards;
    EXPECT_EQ(serial_stats.binding_nodes_allocated,
              sharded_stats.binding_nodes_allocated)
        << "shards=" << shards;
    EXPECT_EQ(serial_stats.predcache_hits, sharded_stats.predcache_hits)
        << "shards=" << shards;
    EXPECT_EQ(serial_stats.predcache_misses, sharded_stats.predcache_misses)
        << "shards=" << shards;
  }
}

}  // namespace
}  // namespace cepr
