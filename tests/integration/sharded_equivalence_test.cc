// Property suite for the sharded execution mode: for every workload the
// ShardedEngine must produce exactly the single-threaded Engine's ranked
// output — same results, same order, same ranks, same windows — at any
// shard count. This is the output-equivalence invariant the shard/merge
// design is built around (docs/ARCHITECTURE.md).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/engine.h"
#include "runtime/sharded_engine.h"
#include "workload/health.h"
#include "workload/stock.h"
#include "workload/traffic.h"

namespace cepr {
namespace {

struct Workload {
  const char* label;
  SchemaPtr schema;
  std::vector<Event> events;
  std::string query;
};

Workload StockWorkload(size_t n = 6000) {
  StockOptions options;
  options.num_symbols = 6;
  options.v_probability = 0.03;
  options.base.interval_micros = 1000;
  StockGenerator gen(options);
  return Workload{
      "stock", gen.schema(), gen.Take(n),
      "SELECT a.symbol, a.price, MIN(b.price), c.price "
      "FROM Stock MATCH PATTERN SEQ(a, b+, c) "
      "PARTITION BY symbol "
      "WHERE b[i].price < b[i-1].price AND b[1].price < a.price "
      "  AND c.price > a.price "
      "WITHIN 100 MILLISECONDS "
      "RANK BY (a.price - MIN(b.price)) / a.price DESC "
      "LIMIT 10 EMIT ON WINDOW CLOSE"};
}

Workload HealthWorkload(size_t n = 6000) {
  HealthOptions options;
  options.num_patients = 8;
  options.episode_probability = 0.01;
  HealthGenerator gen(options);
  return Workload{
      "health", gen.schema(), gen.Take(n),
      "SELECT a.patient, a.heart_rate, MAX(r.heart_rate) "
      "FROM Vitals MATCH PATTERN SEQ(a, r+) "
      "PARTITION BY patient "
      "WHERE r[i].heart_rate > r[i-1].heart_rate "
      "  AND r[1].heart_rate > a.heart_rate "
      "WITHIN 30 SECONDS "
      "RANK BY MAX(r.heart_rate) - a.heart_rate DESC "
      "LIMIT 5 EMIT ON WINDOW CLOSE"};
}

Workload TrafficWorkload(size_t n = 6000) {
  TrafficOptions options;
  options.num_sensors = 8;
  options.jam_probability = 0.01;
  TrafficGenerator gen(options);
  return Workload{
      "traffic", gen.schema(), gen.Take(n),
      "SELECT a.sensor, a.speed, MIN(d.speed) "
      "FROM Traffic MATCH PATTERN SEQ(a, d+) "
      "PARTITION BY sensor "
      "WHERE d[i].speed < d[i-1].speed AND d[1].speed < a.speed "
      "WITHIN 10 SECONDS "
      "RANK BY a.speed - MIN(d.speed) DESC "
      "LIMIT 3 EMIT ON WINDOW CLOSE"};
}

std::vector<RankedResult> RunSerial(const Workload& w, RankerPolicy policy) {
  Engine engine;
  EXPECT_TRUE(engine.RegisterSchema(w.schema).ok());
  CollectSink sink;
  QueryOptions options;
  options.ranker = policy;
  const Status s = engine.RegisterQuery("q", w.query, options, &sink);
  EXPECT_TRUE(s.ok()) << s.ToString();
  for (const Event& e : w.events) {
    const Status push = engine.Push(Event(e));
    EXPECT_TRUE(push.ok()) << push.ToString();
  }
  engine.Finish();
  return sink.results();
}

std::vector<RankedResult> RunSharded(const Workload& w, RankerPolicy policy,
                                     size_t num_shards) {
  ShardedEngineOptions engine_options;
  engine_options.num_shards = num_shards;
  ShardedEngine engine(engine_options);
  EXPECT_TRUE(engine.RegisterSchema(w.schema).ok());
  CollectSink sink;
  QueryOptions options;
  options.ranker = policy;
  const Status s = engine.RegisterQuery("q", w.query, options, &sink);
  EXPECT_TRUE(s.ok()) << s.ToString();
  for (const Event& e : w.events) {
    const Status push = engine.Push(Event(e));
    EXPECT_TRUE(push.ok()) << push.ToString();
  }
  engine.Finish();
  return sink.results();
}

void ExpectIdentical(const std::vector<RankedResult>& serial,
                     const std::vector<RankedResult>& sharded,
                     const std::string& label) {
  ASSERT_EQ(serial.size(), sharded.size()) << label;
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].window_id, sharded[i].window_id) << label << " @" << i;
    EXPECT_EQ(serial[i].rank, sharded[i].rank) << label << " @" << i;
    EXPECT_EQ(serial[i].provisional, sharded[i].provisional) << label << " @" << i;
    // Identity is the full match content: span, detecting position, score,
    // output row. (match.id is matcher-local and differs by design.)
    EXPECT_EQ(serial[i].match.first_ts, sharded[i].match.first_ts)
        << label << " @" << i;
    EXPECT_EQ(serial[i].match.last_ts, sharded[i].match.last_ts)
        << label << " @" << i;
    EXPECT_EQ(serial[i].match.last_sequence, sharded[i].match.last_sequence)
        << label << " @" << i;
    EXPECT_DOUBLE_EQ(serial[i].match.score, sharded[i].match.score)
        << label << " @" << i;
    EXPECT_EQ(serial[i].match.row, sharded[i].match.row) << label << " @" << i;
  }
}

class ShardedEquivalenceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ShardedEquivalenceTest, StockIdenticalToSerial) {
  const Workload w = StockWorkload();
  const auto serial = RunSerial(w, RankerPolicy::kPruned);
  EXPECT_FALSE(serial.empty()) << "workload produced no results; weak test";
  ExpectIdentical(serial, RunSharded(w, RankerPolicy::kPruned, GetParam()),
                  "stock shards=" + std::to_string(GetParam()));
}

TEST_P(ShardedEquivalenceTest, HealthIdenticalToSerial) {
  const Workload w = HealthWorkload();
  const auto serial = RunSerial(w, RankerPolicy::kPruned);
  EXPECT_FALSE(serial.empty()) << "workload produced no results; weak test";
  ExpectIdentical(serial, RunSharded(w, RankerPolicy::kPruned, GetParam()),
                  "health shards=" + std::to_string(GetParam()));
}

TEST_P(ShardedEquivalenceTest, TrafficIdenticalToSerial) {
  const Workload w = TrafficWorkload();
  const auto serial = RunSerial(w, RankerPolicy::kPruned);
  EXPECT_FALSE(serial.empty()) << "workload produced no results; weak test";
  ExpectIdentical(serial, RunSharded(w, RankerPolicy::kPruned, GetParam()),
                  "traffic shards=" + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardedEquivalenceTest,
                         ::testing::Values(1, 2, 4));

TEST(ShardedEquivalenceModesTest, HeapPolicyAndCrossPolicy) {
  // The sharded heap configuration must equal both the serial heap and the
  // serial naive-sort reference (policy equivalence composes with shard
  // equivalence).
  const Workload w = StockWorkload(4000);
  const auto serial_naive = RunSerial(w, RankerPolicy::kNaiveSort);
  const auto sharded_heap = RunSharded(w, RankerPolicy::kHeap, 4);
  ExpectIdentical(serial_naive, sharded_heap, "naive-vs-sharded-heap");
}

TEST(ShardedEquivalenceModesTest, CountWindowsAndUnpartitioned) {
  // EMIT EVERY n EVENTS (count-based report windows, global ordinals) on
  // an unpartitioned query: the whole stream runs on one pinned shard and
  // must still match the serial engine exactly.
  Workload w = StockWorkload(4000);
  w.query =
      "SELECT a.price, MIN(b.price) "
      "FROM Stock MATCH PATTERN SEQ(a, b+, c) "
      "WHERE b[i].price < b[i-1].price AND b[1].price < a.price "
      "  AND c.price > a.price "
      "WITHIN 50 MILLISECONDS "
      "RANK BY a.price - MIN(b.price) DESC "
      "LIMIT 5 EMIT EVERY 500 EVENTS";
  const auto serial = RunSerial(w, RankerPolicy::kHeap);
  EXPECT_FALSE(serial.empty()) << "workload produced no results; weak test";
  ExpectIdentical(serial, RunSharded(w, RankerPolicy::kHeap, 3),
                  "count-window-unpartitioned");
}

TEST(ShardedEquivalenceModesTest, PassthroughDetectionOrder) {
  // No RANK BY: detection-order (passthrough) emission, merged across
  // shards by detecting-event position.
  Workload w = StockWorkload(4000);
  w.query =
      "SELECT a.symbol, a.price "
      "FROM Stock MATCH PATTERN SEQ(a, b+, c) "
      "PARTITION BY symbol "
      "WHERE b[i].price < b[i-1].price AND b[1].price < a.price "
      "  AND c.price > a.price "
      "WITHIN 50 MILLISECONDS "
      "LIMIT 20 EMIT EVERY 1000 EVENTS";
  const auto serial = RunSerial(w, RankerPolicy::kPassthrough);
  EXPECT_FALSE(serial.empty()) << "workload produced no results; weak test";
  ExpectIdentical(serial, RunSharded(w, RankerPolicy::kPassthrough, 4),
                  "passthrough");
}

TEST(ShardedEquivalenceModesTest, RepeatedRunsIdentical) {
  const Workload w = StockWorkload(3000);
  const auto r1 = RunSharded(w, RankerPolicy::kPruned, 4);
  const auto r2 = RunSharded(w, RankerPolicy::kPruned, 4);
  ExpectIdentical(r1, r2, "repeat");
}

TEST(ShardedEngineApiTest, RejectsEagerEmission) {
  ShardedEngine engine;
  ASSERT_TRUE(engine.RegisterSchema(StockGenerator::MakeSchema()).ok());
  CollectSink sink;
  const Status s = engine.RegisterQuery(
      "q",
      "SELECT a.price FROM Stock MATCH PATTERN SEQ(a) WHERE a.price > 0 "
      "RANK BY a.price DESC LIMIT 1 EMIT ON COMPLETE",
      QueryOptions{}, &sink);
  EXPECT_FALSE(s.ok());
}

TEST(ShardedEngineApiTest, RejectsDerivedStreams) {
  ShardedEngine engine;
  ASSERT_TRUE(engine.RegisterSchema(StockGenerator::MakeSchema()).ok());
  const Status s = engine.RegisterQuery(
      "q",
      "SELECT a.price AS p FROM Stock MATCH PATTERN SEQ(a) WHERE a.price > 0 "
      "WITHIN 1 SECONDS RANK BY a.price DESC EMIT ON WINDOW CLOSE "
      "INTO Derived",
      QueryOptions{}, nullptr);
  EXPECT_FALSE(s.ok());
}

TEST(ShardedEngineApiTest, RejectsRegistrationAfterStart) {
  Workload w = StockWorkload(10);
  ShardedEngineOptions options;
  options.num_shards = 2;
  ShardedEngine engine(options);
  ASSERT_TRUE(engine.RegisterSchema(w.schema).ok());
  CollectSink sink;
  ASSERT_TRUE(engine.RegisterQuery("q1", w.query, QueryOptions{}, &sink).ok());
  ASSERT_TRUE(engine.Push(Event(w.events[0])).ok());
  const Status late =
      engine.RegisterQuery("q2", w.query, QueryOptions{}, &sink);
  EXPECT_FALSE(late.ok());
  engine.Finish();
  EXPECT_FALSE(engine.Push(Event(w.events[1])).ok());  // terminal
}

TEST(ShardedEngineApiTest, OutOfOrderRejectionParityWithSerial) {
  // Default strict ingest: a timestamp regression must be rejected by the
  // serial and sharded engines identically (same code, stream untouched).
  const Workload w = StockWorkload(10);
  Engine serial;
  ASSERT_TRUE(serial.RegisterSchema(w.schema).ok());
  ShardedEngine sharded;
  ASSERT_TRUE(sharded.RegisterSchema(w.schema).ok());

  ASSERT_TRUE(serial.Push(Event(w.events[5])).ok());
  ASSERT_TRUE(sharded.Push(Event(w.events[5])).ok());
  const Status s1 = serial.Push(Event(w.events[0]));
  const Status s2 = sharded.Push(Event(w.events[0]));
  EXPECT_FALSE(s1.ok());
  EXPECT_FALSE(s2.ok());
  EXPECT_EQ(s1.code(), s2.code());
  // The rejected event was not ingested on either side.
  EXPECT_EQ(serial.events_ingested(), 1u);
  EXPECT_EQ(sharded.events_ingested(), 1u);
  sharded.Finish();
}

TEST(ShardedEngineApiTest, ConfigureStreamIngestClampParity) {
  // Per-stream clamp opt-in (what EMIT INTO derived streams get on the
  // serial engine) behaves identically on both engines: the regression is
  // admitted, clamped, and counted.
  const Workload w = StockWorkload(10);
  Engine serial;
  ASSERT_TRUE(serial.RegisterSchema(w.schema).ok());
  ShardedEngine sharded;
  ASSERT_TRUE(sharded.RegisterSchema(w.schema).ok());
  const ReorderConfig clamp{0, LatePolicy::kClamp};
  ASSERT_TRUE(serial.ConfigureStreamIngest("Stock", clamp).ok());
  ASSERT_TRUE(sharded.ConfigureStreamIngest("Stock", clamp).ok());

  ASSERT_TRUE(serial.Push(Event(w.events[5])).ok());
  ASSERT_TRUE(sharded.Push(Event(w.events[5])).ok());
  EXPECT_TRUE(serial.Push(Event(w.events[0])).ok());
  EXPECT_TRUE(sharded.Push(Event(w.events[0])).ok());
  EXPECT_EQ(serial.events_ingested(), 2u);
  EXPECT_EQ(sharded.events_ingested(), 2u);
  EXPECT_EQ(serial.Snapshot().reorder.events_clamped, 1u);
  EXPECT_EQ(sharded.Snapshot().reorder.events_clamped, 1u);

  // Reconfiguring after the first event is refused on both engines.
  EXPECT_FALSE(serial.ConfigureStreamIngest("Stock", clamp).ok());
  EXPECT_FALSE(sharded.ConfigureStreamIngest("Stock", clamp).ok());
  sharded.Finish();
}

TEST(ShardedEngineApiTest, MetricsAddUpAfterFinish) {
  const Workload w = StockWorkload(3000);
  ShardedEngineOptions options;
  options.num_shards = 4;
  ShardedEngine engine(options);
  ASSERT_TRUE(engine.RegisterSchema(w.schema).ok());
  CollectSink sink;
  ASSERT_TRUE(engine.RegisterQuery("q", w.query, QueryOptions{}, &sink).ok());
  for (const Event& e : w.events) ASSERT_TRUE(engine.Push(Event(e)).ok());
  engine.Finish();

  EXPECT_EQ(engine.events_ingested(), w.events.size());
  const QueryMetrics m = engine.GetQueryMetrics("q").value();
  EXPECT_EQ(m.events, w.events.size());
  EXPECT_EQ(m.results, sink.results().size());

  uint64_t shard_events = 0;
  for (const ShardStats& s : engine.shard_stats()) shard_events += s.events;
  EXPECT_EQ(shard_events, w.events.size());
  EXPECT_GT(engine.merge_stats().windows_merged, 0u);
  EXPECT_EQ(engine.merge_stats().results_emitted, sink.results().size());
}

}  // namespace
}  // namespace cepr
