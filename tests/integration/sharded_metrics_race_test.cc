// Concurrency suite for the metrics snapshot subsystem: a monitor thread
// must be able to poll ShardedEngine::Snapshot() (and the narrower
// introspection calls) while the ingest and shard threads are running, with
// no data races (run under -DCEPR_SANITIZE=thread) and with each counter
// exact-at-some-instant. After Finish() the aggregated counters must equal
// the serial engine's on the same workload.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "runtime/engine.h"
#include "runtime/sharded_engine.h"
#include "workload/stock.h"

namespace cepr {
namespace {

struct Workload {
  SchemaPtr schema;
  std::vector<Event> events;
  std::string query;
};

Workload StockWorkload(size_t n) {
  StockOptions options;
  options.num_symbols = 6;
  options.v_probability = 0.03;
  options.base.interval_micros = 1000;
  StockGenerator gen(options);
  return Workload{
      gen.schema(), gen.Take(n),
      "SELECT a.symbol, a.price, MIN(b.price), c.price "
      "FROM Stock MATCH PATTERN SEQ(a, b+, c) "
      "PARTITION BY symbol "
      "WHERE b[i].price < b[i-1].price AND b[1].price < a.price "
      "  AND c.price > a.price "
      "WITHIN 100 MILLISECONDS "
      "RANK BY (a.price - MIN(b.price)) / a.price DESC "
      "LIMIT 10 EMIT ON WINDOW CLOSE"};
}

// Regression: a kFinish message carries a default-initialized query index,
// and the shard cell used to be bound before the message-kind switch —
// Push + Finish with zero registered queries indexed an empty cell vector.
TEST(ShardedMetricsRaceTest, ZeroQueryPushFinishDoesNotCrash) {
  ShardedEngineOptions options;
  options.num_shards = 4;
  ShardedEngine engine(options);
  StockGenerator gen(StockOptions{});
  ASSERT_TRUE(engine.RegisterSchema(gen.schema()).ok());
  ASSERT_TRUE(engine.Push(gen.Next()).ok());  // starts the workers
  engine.Finish();
  EXPECT_EQ(engine.events_ingested(), 1u);
  const MetricsSnapshot snap = engine.Snapshot();
  EXPECT_EQ(snap.events_ingested, 1u);
  EXPECT_TRUE(snap.queries.empty());
}

// Snapshots must also be safe before the workers exist (RegisterQuery done,
// no Push yet) and after Finish.
TEST(ShardedMetricsRaceTest, SnapshotBeforeStartAndAfterFinish) {
  const Workload w = StockWorkload(200);
  ShardedEngineOptions options;
  options.num_shards = 2;
  ShardedEngine engine(options);
  ASSERT_TRUE(engine.RegisterSchema(w.schema).ok());
  CollectSink sink;
  ASSERT_TRUE(engine.RegisterQuery("q", w.query, QueryOptions{}, &sink).ok());

  MetricsSnapshot before = engine.Snapshot();
  EXPECT_EQ(before.events_ingested, 0u);
  ASSERT_EQ(before.queries.size(), 1u);
  EXPECT_EQ(before.queries[0].metrics.events, 0u);
  EXPECT_TRUE(before.shards.empty());  // workers not started yet

  for (const Event& e : w.events) ASSERT_TRUE(engine.Push(Event(e)).ok());
  engine.Finish();

  MetricsSnapshot after = engine.Snapshot();
  EXPECT_EQ(after.events_ingested, w.events.size());
  EXPECT_EQ(after.shards.size(), 2u);
  EXPECT_FALSE(after.ToJson().empty());
}

// The tentpole proof: a monitor thread hammers every introspection entry
// point while the ingest thread pushes 100k events through 4 shards. Under
// TSan this is the data-race check; in a plain build it checks the
// monotonicity/sanity invariants the snapshot API documents.
TEST(ShardedMetricsRaceTest, MonitorThreadPollsDuringIngest) {
  const Workload w = StockWorkload(100000);
  ShardedEngineOptions options;
  options.num_shards = 4;
  ShardedEngine engine(options);
  ASSERT_TRUE(engine.RegisterSchema(w.schema).ok());
  CollectSink sink;
  ASSERT_TRUE(engine.RegisterQuery("q", w.query, QueryOptions{}, &sink).ok());

  std::atomic<bool> done{false};
  std::atomic<uint64_t> polls{0};
  std::thread monitor([&] {
    uint64_t last_ingested = 0;
    uint64_t last_events = 0;
    while (!done.load(std::memory_order_acquire)) {
      const MetricsSnapshot snap = engine.Snapshot();
      // Ingest counter is monotone across polls and bounded by the stream.
      EXPECT_GE(snap.events_ingested, last_ingested);
      EXPECT_LE(snap.events_ingested, w.events.size());
      last_ingested = snap.events_ingested;

      ASSERT_EQ(snap.queries.size(), 1u);
      const QueryMetrics& m = snap.queries[0].metrics;
      EXPECT_GE(m.events, last_events);
      EXPECT_LE(m.events, w.events.size());
      last_events = m.events;
      // Histograms merge under the cell mutex; counts never exceed the
      // events routed so far plus in-flight messages.
      EXPECT_LE(m.event_processing_ns.count(), w.events.size());

      uint64_t shard_events = 0;
      for (const ShardStats& s : snap.shards) shard_events += s.events;
      EXPECT_LE(shard_events, w.events.size());

      // Exercise the narrower entry points too (distinct lock paths).
      (void)engine.shard_stats();
      (void)engine.merge_stats();
      const auto qm = engine.GetQueryMetrics("q");
      ASSERT_TRUE(qm.ok());
      (void)snap.ToJson();
      polls.fetch_add(1, std::memory_order_relaxed);
    }
  });

  for (const Event& e : w.events) ASSERT_TRUE(engine.Push(Event(e)).ok());
  engine.Finish();
  done.store(true, std::memory_order_release);
  monitor.join();

  EXPECT_GT(polls.load(), 0u) << "monitor thread never ran; weak test";
  const MetricsSnapshot final_snap = engine.Snapshot();
  EXPECT_EQ(final_snap.events_ingested, w.events.size());
  EXPECT_EQ(final_snap.queries[0].metrics.results, sink.results().size());
}

// After Finish() the sharded aggregation must equal the serial engine's
// QueryMetrics on the same workload. RankerPolicy::kHeap keeps the matcher
// counters exactly comparable (kPruned thresholds are shard-local, so its
// prune/run counters legitimately diverge from the serial global bar).
TEST(ShardedMetricsRaceTest, PostFinishSnapshotMatchesSerialEngine) {
  const Workload w = StockWorkload(6000);
  QueryOptions qopts;
  qopts.ranker = RankerPolicy::kHeap;

  Engine serial;
  ASSERT_TRUE(serial.RegisterSchema(w.schema).ok());
  CollectSink serial_sink;
  ASSERT_TRUE(serial.RegisterQuery("q", w.query, qopts, &serial_sink).ok());
  for (const Event& e : w.events) ASSERT_TRUE(serial.Push(Event(e)).ok());
  serial.Finish();
  const QueryMetrics sm = serial.GetQueryMetrics("q").value();

  ShardedEngineOptions options;
  options.num_shards = 4;
  ShardedEngine sharded(options);
  ASSERT_TRUE(sharded.RegisterSchema(w.schema).ok());
  CollectSink sharded_sink;
  ASSERT_TRUE(sharded.RegisterQuery("q", w.query, qopts, &sharded_sink).ok());
  for (const Event& e : w.events) ASSERT_TRUE(sharded.Push(Event(e)).ok());
  sharded.Finish();
  const QueryMetrics pm = sharded.GetQueryMetrics("q").value();

  EXPECT_FALSE(serial_sink.results().empty()) << "no results; weak test";
  EXPECT_EQ(pm.events, sm.events);
  EXPECT_EQ(pm.matches, sm.matches);
  EXPECT_EQ(pm.results, sm.results);
  EXPECT_EQ(pm.prune_checks, sm.prune_checks);
  EXPECT_EQ(pm.prunes, sm.prunes);

  // Matcher counters are partition-local state, so sharding is invisible
  // to every total. peak_active_runs is the one exception: per-shard peaks
  // happen at different instants, so the sum is only an upper bound.
  EXPECT_EQ(pm.matcher.events, sm.matcher.events);
  EXPECT_EQ(pm.matcher.runs_created, sm.matcher.runs_created);
  EXPECT_EQ(pm.matcher.runs_forked, sm.matcher.runs_forked);
  EXPECT_EQ(pm.matcher.runs_completed, sm.matcher.runs_completed);
  EXPECT_EQ(pm.matcher.runs_expired, sm.matcher.runs_expired);
  EXPECT_EQ(pm.matcher.runs_killed_strict, sm.matcher.runs_killed_strict);
  EXPECT_EQ(pm.matcher.runs_killed_negation, sm.matcher.runs_killed_negation);
  EXPECT_EQ(pm.matcher.runs_pruned_score, sm.matcher.runs_pruned_score);
  EXPECT_EQ(pm.matcher.runs_dropped_capacity,
            sm.matcher.runs_dropped_capacity);
  EXPECT_EQ(pm.matcher.matches, sm.matcher.matches);
  EXPECT_EQ(pm.matcher.runs_cloned, sm.matcher.runs_cloned);
  EXPECT_EQ(pm.matcher.binding_nodes_allocated,
            sm.matcher.binding_nodes_allocated);
  EXPECT_EQ(pm.matcher.predcache_hits, sm.matcher.predcache_hits);
  EXPECT_EQ(pm.matcher.predcache_misses, sm.matcher.predcache_misses);
  EXPECT_GE(pm.matcher.peak_active_runs, sm.matcher.peak_active_runs);

  // Every event is timed exactly once, on whichever engine ran it.
  EXPECT_EQ(pm.event_processing_ns.count(), sm.events);
  EXPECT_EQ(sm.event_processing_ns.count(), sm.events);
  // Shard-local emission happens before the merge cut, so the sharded
  // delay histogram sees at least every delivered result.
  EXPECT_GE(pm.emission_delay_us.count(), pm.results);
  EXPECT_EQ(sm.emission_delay_us.count(), sm.results);

  // And the engine-wide snapshot agrees with the per-query view.
  const MetricsSnapshot snap = sharded.Snapshot();
  EXPECT_EQ(snap.events_ingested, w.events.size());
  ASSERT_EQ(snap.queries.size(), 1u);
  EXPECT_EQ(snap.queries[0].name, "q");
  EXPECT_EQ(snap.queries[0].metrics.matches, pm.matches);
  uint64_t shard_events = 0;
  for (const ShardStats& s : snap.shards) shard_events += s.events;
  EXPECT_EQ(shard_events, w.events.size());
  EXPECT_EQ(snap.merge.results_emitted, sharded_sink.results().size());
}

}  // namespace
}  // namespace cepr
