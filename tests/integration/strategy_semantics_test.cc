// Cross-strategy properties of the matcher, checked on synthetic streams:
//  * STRICT matches are a subset of SKIP_TILL_NEXT matches, which are a
//    subset of SKIP_TILL_ANY matches (comparing bound event sequences);
//  * every emitted match satisfies the WHERE semantics (re-validated
//    directly against the bound events);
//  * WITHIN holds for every match span.

#include <set>

#include <gtest/gtest.h>

#include "runtime/engine.h"
#include "workload/stock.h"

namespace cepr {
namespace {

constexpr char kWhereClause[] =
    "WHERE b[i].price < b[i-1].price AND b[1].price < a.price "
    "  AND c.price > a.price "
    "WITHIN 10 MILLISECONDS";

std::string Query(const std::string& strategy) {
  return "SELECT a.price FROM Stock MATCH PATTERN SEQ(a, b+, c) USING " +
         strategy + " " + kWhereClause;
}

std::vector<RankedResult> RunStrategy(const std::string& strategy,
                                      int num_events, uint64_t seed) {
  Engine engine;
  StockOptions gen_options;
  gen_options.num_symbols = 1;
  gen_options.v_probability = 0.05;
  gen_options.base.seed = seed;
  StockGenerator gen(gen_options);
  EXPECT_TRUE(engine.RegisterSchema(gen.schema()).ok());
  CollectSink sink;
  QueryOptions options;
  MatcherOptions mopts;
  mopts.max_active_runs = 1 << 20;  // no capacity drops in this test
  options.matcher = mopts;
  auto st = engine.RegisterQuery("q", Query(strategy), options, &sink);
  EXPECT_TRUE(st.ok()) << st.ToString();
  for (Event& e : gen.Take(static_cast<size_t>(num_events))) {
    EXPECT_TRUE(engine.Push(std::move(e)).ok());
  }
  engine.Finish();
  return sink.results();
}

// A match's identity: the sequence numbers of all bound events.
std::vector<uint64_t> Signature(const Match& m) {
  std::vector<uint64_t> sig;
  for (const auto& binding : m.bindings) {
    for (const auto& e : binding) sig.push_back(e->sequence());
  }
  return sig;
}

std::set<std::vector<uint64_t>> Signatures(const std::vector<RankedResult>& rs) {
  std::set<std::vector<uint64_t>> out;
  for (const RankedResult& r : rs) out.insert(Signature(r.match));
  return out;
}

class StrategySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StrategySweep, InclusionHierarchy) {
  const uint64_t seed = GetParam();
  const auto strict = Signatures(RunStrategy("STRICT", 800, seed));
  const auto next = Signatures(RunStrategy("SKIP_TILL_NEXT_MATCH", 800, seed));
  const auto any = Signatures(RunStrategy("SKIP_TILL_ANY_MATCH", 800, seed));

  EXPECT_FALSE(any.empty()) << "workload produced no matches; weak test";
  for (const auto& sig : strict) {
    EXPECT_TRUE(any.count(sig)) << "strict match missing from skip-till-any";
  }
  for (const auto& sig : next) {
    EXPECT_TRUE(any.count(sig)) << "skip-till-next match missing from any";
  }
  EXPECT_LE(strict.size(), next.size());
  EXPECT_LE(next.size(), any.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategySweep, ::testing::Values(1, 7, 42));

TEST(StrategySemanticsTest, MatchesSatisfyWhereSemantics) {
  for (const std::string strategy :
       {"STRICT", "SKIP_TILL_NEXT_MATCH", "SKIP_TILL_ANY_MATCH"}) {
    const auto results = RunStrategy(strategy, 800, 11);
    for (const RankedResult& r : results) {
      const auto& a = r.match.bindings[0];
      const auto& b = r.match.bindings[1];
      const auto& c = r.match.bindings[2];
      ASSERT_EQ(a.size(), 1u);
      ASSERT_GE(b.size(), 1u);
      ASSERT_EQ(c.size(), 1u);
      const double a_price = a[0]->value(1).AsFloat();
      // b[1].price < a.price
      EXPECT_LT(b[0]->value(1).AsFloat(), a_price) << strategy;
      // b strictly decreasing
      for (size_t i = 1; i < b.size(); ++i) {
        EXPECT_LT(b[i]->value(1).AsFloat(), b[i - 1]->value(1).AsFloat())
            << strategy;
      }
      // c.price > a.price
      EXPECT_GT(c[0]->value(1).AsFloat(), a_price) << strategy;
      // WITHIN span
      EXPECT_LE(r.match.last_ts - r.match.first_ts, 10 * 1000) << strategy;
      // events in sequence order
      uint64_t prev = a[0]->sequence();
      for (const auto& e : b) {
        EXPECT_GT(e->sequence(), prev) << strategy;
        prev = e->sequence();
      }
      EXPECT_GT(c[0]->sequence(), prev) << strategy;
    }
  }
}

TEST(StrategySemanticsTest, StrictMatchesAreContiguous) {
  const auto results = RunStrategy("STRICT", 2000, 5);
  for (const RankedResult& r : results) {
    std::vector<uint64_t> sig = Signature(r.match);
    for (size_t i = 1; i < sig.size(); ++i) {
      EXPECT_EQ(sig[i], sig[i - 1] + 1) << "strict match has a gap";
    }
  }
}

TEST(StrategySemanticsTest, SkipTillAnyMatchesAreUnique) {
  const auto results = RunStrategy("SKIP_TILL_ANY_MATCH", 600, 3);
  std::set<std::vector<uint64_t>> seen;
  for (const RankedResult& r : results) {
    EXPECT_TRUE(seen.insert(Signature(r.match)).second)
        << "duplicate match emitted";
  }
}

}  // namespace
}  // namespace cepr
