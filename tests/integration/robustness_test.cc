// Robustness: the language front-end must reject malformed input with a
// Status (never crash, never accept garbage), across systematic mutations
// of a known-good query and randomly generated token soup.

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/random.h"
#include "lang/parser.h"
#include "runtime/engine.h"
#include "testing/helpers.h"

namespace cepr {
namespace {

constexpr char kGoodQuery[] =
    "SELECT a.price, MIN(b.price) FROM Stock MATCH PATTERN SEQ(a, b+, c) "
    "USING SKIP_TILL_NEXT_MATCH PARTITION BY symbol "
    "WHERE b[i].price < b[i-1].price AND c.price > a.price "
    "WITHIN 10 SECONDS RANK BY a.price - MIN(b.price) DESC LIMIT 5 "
    "EMIT ON WINDOW CLOSE";

TEST(RobustnessTest, TruncationsNeverCrash) {
  const std::string text = kGoodQuery;
  int accepted = 0;
  for (size_t len = 0; len <= text.size(); ++len) {
    auto r = ParseQuery(text.substr(0, len));
    if (r.ok()) ++accepted;
  }
  // Only prefixes that end at a clause boundary can parse (each boundary
  // contributes one accepted length per trailing-whitespace position); the
  // majority must fail cleanly, and none may crash.
  EXPECT_LT(accepted, static_cast<int>(text.size()) / 3);
  EXPECT_GT(accepted, 0);  // the full query itself parses
}

TEST(RobustnessTest, SingleCharacterDeletionsNeverCrash) {
  const std::string text = kGoodQuery;
  for (size_t i = 0; i < text.size(); ++i) {
    std::string mutated = text;
    mutated.erase(i, 1);
    auto r = ParseQuery(mutated);  // may pass or fail; must not crash
    if (r.ok()) {
      // If it parsed, it must also unparse and reparse.
      auto again = ParseQuery(r->ToString());
      EXPECT_TRUE(again.ok()) << "unparse broke at deletion " << i;
    }
  }
}

TEST(RobustnessTest, RandomTokenSoupNeverCrashes) {
  static const char* kTokens[] = {
      "SELECT", "FROM",  "MATCH", "PATTERN", "SEQ",   "(",     ")",    ",",
      "WHERE",  "RANK",  "BY",    "LIMIT",   "EMIT",  "ON",    "+",    "-",
      "*",      "/",     "a",     "b",       "price", "Stock", "42",   "2.5",
      "'x'",    "[",     "]",     "i",       "!",     ".",     "AND",  "OR",
      "NOT",    "MIN",   "DESC",  "WITHIN",  "SECONDS", ";",   "<",    ">=",
  };
  Random rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string soup;
    const size_t len = 1 + rng.Uniform(25);
    for (size_t i = 0; i < len; ++i) {
      soup += kTokens[rng.Uniform(sizeof(kTokens) / sizeof(kTokens[0]))];
      soup += " ";
    }
    auto q = ParseQuery(soup);
    auto s = ParseStatement(soup);
    auto e = ParseExpression(soup);
    // Whatever parsed must stringify without crashing.
    if (q.ok()) (void)q->ToString();
    if (e.ok()) (void)(*e)->ToString();
  }
  SUCCEED();
}

TEST(RobustnessTest, RandomBytesNeverCrashLexer) {
  Random rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string bytes;
    const size_t len = rng.Uniform(64);
    for (size_t i = 0; i < len; ++i) {
      bytes += static_cast<char>(rng.Uniform(128));
    }
    (void)ParseQuery(bytes);
  }
  SUCCEED();
}

TEST(RobustnessTest, ParsedGarbageStillRejectedSemantically) {
  // Structurally valid but semantically broken queries must fail in the
  // analyzer/compiler with a Status, not crash the engine.
  Engine engine;
  ASSERT_TRUE(engine.RegisterSchema(testing::StockSchema()).ok());
  const char* bad[] = {
      "SELECT z.price FROM Stock MATCH PATTERN SEQ(a)",
      "SELECT a.nosuch FROM Stock MATCH PATTERN SEQ(a)",
      "SELECT a.price FROM Stock MATCH PATTERN SEQ(a, a)",
      "SELECT a.price FROM Stock MATCH PATTERN SEQ(!a, b)",
      "SELECT a.price FROM Stock MATCH PATTERN SEQ(a) RANK BY a.symbol DESC",
      "SELECT b[i].price FROM Stock MATCH PATTERN SEQ(a, b+)",
      "SELECT a.price FROM Stock MATCH PATTERN SEQ(a) EMIT ON WINDOW CLOSE",
      "SELECT a.price FROM Nowhere MATCH PATTERN SEQ(a)",
  };
  int i = 0;
  for (const char* text : bad) {
    auto s = engine.RegisterQuery("bad" + std::to_string(i++), text,
                                  QueryOptions{}, nullptr);
    EXPECT_FALSE(s.ok()) << text;
  }
  EXPECT_TRUE(engine.QueryNames().empty());
}

TEST(RobustnessTest, EngineSurvivesAdversarialStreamFuzz) {
  // Seeded random streams straight through Engine::Push: out-of-order
  // bursts (cleanly rejected), duplicate timestamps, NULL-heavy payloads,
  // and a 2% injected poison rate under kSkipAndCount. The engine must
  // never crash and its counters must stay mutually consistent.
  static const uint64_t kSeeds[] = {1, 2, 3};
  for (uint64_t seed : kSeeds) {
    Random rng(seed);
    FaultInjector injector(seed);
    injector.ArmRate(fault_points::kEvalPoison, 0.02);

    EngineOptions engine_options;
    engine_options.fault_policy = FaultPolicy::kSkipAndCount;
    engine_options.fault_injector = &injector;
    engine_options.max_runs_per_partition = 128;
    Engine engine(engine_options);
    ASSERT_TRUE(engine.RegisterSchema(testing::StockSchema()).ok());
    CollectSink sink;
    ASSERT_TRUE(
        engine.RegisterQuery("q", kGoodQuery, QueryOptions{}, &sink).ok());

    static const char* kSymbols[] = {"A", "B", "C"};
    Timestamp ts = 0;
    uint64_t accepted = 0;
    uint64_t rejected = 0;
    for (int i = 0; i < 3000; ++i) {
      const uint64_t roll = rng.Uniform(100);
      Timestamp event_ts = ts;  // roll in [5, 25): duplicate timestamp
      if (roll < 5) {
        event_ts = ts > 100000 ? ts - 100000 : 0;  // out-of-order burst
      } else if (roll >= 25) {
        ts += 1 + static_cast<Timestamp>(rng.Uniform(2000));
        event_ts = ts;
      }
      std::vector<Value> values;
      values.push_back(Value::String(kSymbols[rng.Uniform(3)]));
      values.push_back(rng.Uniform(4) == 0
                           ? Value::Null()
                           : Value::Float(rng.UniformDouble(1, 1000)));
      values.push_back(rng.Uniform(4) == 0
                           ? Value::Null()
                           : Value::Int(rng.UniformInt(1, 10000)));
      const Status s = engine.Push(
          Event(testing::StockSchema(), event_ts, std::move(values)));
      if (s.ok()) {
        ++accepted;
      } else {
        ++rejected;  // must be a clean rejection, never a crash
      }
    }
    engine.Finish();

    EXPECT_GT(rejected, 0u) << "no out-of-order burst materialized";
    EXPECT_EQ(engine.events_ingested(), accepted);
    auto metrics = engine.GetQueryMetrics("q");
    ASSERT_TRUE(metrics.ok());
    EXPECT_EQ(metrics->matcher.events, accepted);
    EXPECT_EQ(metrics->matcher.events_quarantined,
              injector.fires(fault_points::kEvalPoison))
        << "every injected poison must be quarantined, nothing else";
  }
}

TEST(RobustnessTest, DeepExpressionNestingParses) {
  // 200 nested parentheses: recursion depth must be handled (or cleanly
  // rejected); it must not smash the stack.
  std::string expr(200, '(');
  expr += "1";
  expr += std::string(200, ')');
  auto r = ParseExpression(expr);
  EXPECT_TRUE(r.ok());

  std::string chain = "1";
  for (int i = 0; i < 500; ++i) chain += " + 1";
  EXPECT_TRUE(ParseExpression(chain).ok());
}

}  // namespace
}  // namespace cepr
