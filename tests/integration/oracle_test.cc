// Oracle test: an independent brute-force enumerator of SKIP_TILL_ANY_MATCH
// semantics, compared against the engine on small random streams.
//
// The oracle enumerates every subsequence assignment of events to the
// pattern SEQ(a, b+, c) directly from the semantic definition (no automata,
// no incremental aggregates) and applies the WHERE conjuncts literally.
// Any divergence indicates an engine bug in run forking, predicate
// evaluation order, or aggregate maintenance.

#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "runtime/engine.h"
#include "testing/helpers.h"

namespace cepr {
namespace {

using testing::StockSchema;
using testing::Tick;

// The query under test. Score: dip depth (absolute).
constexpr char kQuery[] =
    "SELECT a.price FROM Stock MATCH PATTERN SEQ(a, b+, c) "
    "USING SKIP_TILL_ANY_MATCH "
    "WHERE a.price > 50 "
    "  AND b[i].price < b[i-1].price AND b[1].price < a.price "
    "  AND c.price > a.price "
    "WITHIN 10 MILLISECONDS";

// One oracle match: indexes of (a, b..., c) into the stream.
using OracleMatch = std::vector<size_t>;

// Brute-force enumeration per the declarative semantics.
std::set<OracleMatch> OracleMatches(const std::vector<double>& prices,
                                    Timestamp step_us, Timestamp within_us) {
  std::set<OracleMatch> out;
  const size_t n = prices.size();
  for (size_t ai = 0; ai < n; ++ai) {
    if (!(prices[ai] > 50)) continue;
    // Depth-first extension of strictly-decreasing b sequences after a.
    struct Frame {
      OracleMatch b;  // chosen b indexes
    };
    std::vector<OracleMatch> stack;
    for (size_t b1 = ai + 1; b1 < n; ++b1) {
      if (prices[b1] < prices[ai]) stack.push_back({b1});
    }
    while (!stack.empty()) {
      OracleMatch b = std::move(stack.back());
      stack.pop_back();
      // Try to close with any later c.
      for (size_t ci = b.back() + 1; ci < n; ++ci) {
        if (prices[ci] > prices[ai] &&
            static_cast<Timestamp>(ci - ai) * step_us <= within_us) {
          OracleMatch m;
          m.push_back(ai);
          m.insert(m.end(), b.begin(), b.end());
          m.push_back(ci);
          out.insert(std::move(m));
        }
      }
      // Extend b with any later, strictly smaller event (within the span).
      for (size_t bn = b.back() + 1; bn < n; ++bn) {
        if (prices[bn] < prices[b.back()] &&
            static_cast<Timestamp>(bn - ai) * step_us <= within_us) {
          OracleMatch next = b;
          next.push_back(bn);
          stack.push_back(std::move(next));
        }
      }
    }
  }
  return out;
}

std::set<OracleMatch> EngineMatches(const std::vector<double>& prices,
                                    Timestamp step_us) {
  Engine engine;
  EXPECT_TRUE(engine.RegisterSchema(StockSchema()).ok());
  CollectSink sink;
  QueryOptions options;
  options.matcher.max_active_runs = 1 << 22;
  auto st = engine.RegisterQuery("q", kQuery, options, &sink);
  EXPECT_TRUE(st.ok()) << st.ToString();
  for (size_t i = 0; i < prices.size(); ++i) {
    EXPECT_TRUE(
        engine.Push(Tick(static_cast<Timestamp>(i) * step_us, prices[i])).ok());
  }
  engine.Finish();

  std::set<OracleMatch> out;
  for (const RankedResult& r : sink.results()) {
    OracleMatch m;
    for (const auto& binding : r.match.bindings) {
      for (const auto& e : binding) m.push_back(e->sequence());
    }
    out.insert(std::move(m));
  }
  return out;
}

void CompareOnStream(const std::vector<double>& prices, const char* label) {
  constexpr Timestamp kStep = 1000;          // 1ms apart
  constexpr Timestamp kWithin = 10 * 1000;   // WITHIN 10ms
  const auto expected = OracleMatches(prices, kStep, kWithin);
  const auto actual = EngineMatches(prices, kStep);
  EXPECT_EQ(expected.size(), actual.size()) << label;
  for (const auto& m : expected) {
    EXPECT_TRUE(actual.count(m)) << label << ": engine missed an oracle match";
  }
  for (const auto& m : actual) {
    EXPECT_TRUE(expected.count(m)) << label << ": engine emitted a bogus match";
  }
}

TEST(OracleTest, HandPickedStreams) {
  CompareOnStream({100, 90, 80, 110}, "simple dip");
  CompareOnStream({100, 90, 95, 85, 110}, "interleaved");
  CompareOnStream({60, 55, 70, 65, 75, 52, 90}, "multiple starts");
  CompareOnStream({100, 100, 100}, "flat (no matches)");
  CompareOnStream({40, 30, 45}, "below anchor threshold");
  CompareOnStream({100, 90, 80, 70, 60, 110}, "long dip");
}

class OracleRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OracleRandomTest, RandomStreamsAgree) {
  ::cepr::Random rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> prices;
    const size_t len = 8 + rng.Uniform(8);  // small enough for brute force
    prices.reserve(len);
    for (size_t i = 0; i < len; ++i) prices.push_back(rng.UniformDouble(40, 120));
    CompareOnStream(prices, ("seed=" + std::to_string(GetParam()) + " trial=" +
                             std::to_string(trial))
                                .c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleRandomTest,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace cepr
