// Overload protection: run budgets must hold the live-run population at
// the configured cap under adversarial Kleene streams, every shed must be
// counted and surfaced, and the ranking-aware shed policy must keep enough
// of the strongest runs that the top-k output survives the budget.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/engine.h"
#include "testing/helpers.h"
#include "workload/stock.h"

namespace cepr {
namespace {

using testing::StockSchema;
using testing::Tick;

// Every event starts a run, forks every open run (ANY_MATCH, no
// predicates) and completes runs: the unbounded live-run population grows
// exponentially in window size. This is the stream run budgets exist for.
constexpr char kExplosionQuery[] =
    "SELECT a.price FROM Stock MATCH PATTERN SEQ(a, b+, c) "
    "USING SKIP_TILL_ANY_MATCH PARTITION BY symbol "
    "WITHIN 10 SECONDS RANK BY a.price DESC LIMIT 5 EMIT ON WINDOW CLOSE";

TEST(OverloadTest, KleeneExplosionHeldAtPartitionCap) {
  EngineOptions engine_options;
  engine_options.max_runs_per_partition = 64;
  Engine engine(engine_options);
  ASSERT_TRUE(engine.RegisterSchema(StockSchema()).ok());
  CollectSink sink;
  ASSERT_TRUE(
      engine.RegisterQuery("q", kExplosionQuery, QueryOptions{}, &sink).ok());

  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(engine.Push(Tick(i * 1000, 100.0 + i)).ok());
    ASSERT_LE(engine.live_runs(), 64u) << "cap breached at event " << i;
  }
  engine.Finish();

  auto metrics = engine.GetQueryMetrics("q");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->matcher.events, 300u);
  EXPECT_LE(metrics->matcher.peak_active_runs, 64u);
  EXPECT_GT(metrics->matcher.runs_dropped_capacity, 0u)
      << "an explosion under a cap must shed";
  EXPECT_FALSE(sink.results().empty()) << "shedding must not mute the query";
}

TEST(OverloadTest, GlobalBudgetCapsAcrossPartitions) {
  EngineOptions engine_options;
  engine_options.max_total_runs = 40;
  Engine engine(engine_options);
  ASSERT_TRUE(engine.RegisterSchema(StockSchema()).ok());
  CollectSink sink;
  ASSERT_TRUE(
      engine.RegisterQuery("q", kExplosionQuery, QueryOptions{}, &sink).ok());

  static const char* kSymbols[] = {"A", "B", "C", "D"};
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(
        engine.Push(Tick(i * 1000, 100.0 + i, 100, kSymbols[i % 4])).ok());
    ASSERT_LE(engine.live_runs(), 40u) << "global budget breached at " << i;
  }
  engine.Finish();

  auto metrics = engine.GetQueryMetrics("q");
  ASSERT_TRUE(metrics.ok());
  EXPECT_GT(metrics->matcher.runs_dropped_capacity, 0u);
}

TEST(OverloadTest, ShedsSurfacedInSnapshotJson) {
  EngineOptions engine_options;
  engine_options.max_runs_per_partition = 8;
  Engine engine(engine_options);
  ASSERT_TRUE(engine.RegisterSchema(StockSchema()).ok());
  ASSERT_TRUE(
      engine.RegisterQuery("q", kExplosionQuery, QueryOptions{}, nullptr).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(engine.Push(Tick(i * 1000, 50.0)).ok());
  }
  engine.Finish();

  const std::string json = engine.Snapshot().ToJson();
  EXPECT_NE(json.find("\"runs_dropped_capacity\":"), std::string::npos);
  EXPECT_EQ(json.find("\"runs_dropped_capacity\":0"), std::string::npos)
      << "sheds happened but the snapshot reports zero: " << json;
  EXPECT_NE(json.find("\"events_quarantined\":"), std::string::npos);
}

// Deterministic stream where the shed policies keep observably different
// runs. Prices 50, 40, 30 each start a run (and the lower ones extend the
// earlier runs' Kleene bodies); 60 completes whatever survived. Cap 2:
//  * kRejectNew keeps the two oldest runs   -> matches {a=50, a=40};
//  * kShedOldest keeps the two newest       -> the a=50 run is gone;
//  * kShedLowestScoreBound (RANK BY a.price DESC) keeps the two strongest
//    bounds {50, 40} and rejects the weaker newcomer, like kRejectNew.
constexpr char kPolicyQuery[] =
    "SELECT a.price FROM Stock MATCH PATTERN SEQ(a, b+, c) "
    "PARTITION BY symbol "
    "WHERE b[i].price < a.price AND c.price > a.price "
    "WITHIN 10 SECONDS RANK BY a.price DESC LIMIT 10 EMIT ON WINDOW CLOSE";

std::vector<double> RunPolicy(ShedPolicy policy) {
  EngineOptions engine_options;
  engine_options.max_runs_per_partition = 2;
  engine_options.shed_policy = policy;
  Engine engine(engine_options);
  EXPECT_TRUE(engine.RegisterSchema(StockSchema()).ok());
  CollectSink sink;
  EXPECT_TRUE(
      engine.RegisterQuery("q", kPolicyQuery, QueryOptions{}, &sink).ok());
  const double prices[] = {50, 40, 30, 60};
  Timestamp ts = 0;
  for (double price : prices) {
    EXPECT_TRUE(engine.Push(Tick(ts += 1000, price)).ok());
  }
  engine.Finish();
  std::vector<double> a_prices;
  for (const RankedResult& r : sink.results()) {
    a_prices.push_back(r.match.row[0].AsFloat());
  }
  return a_prices;
}

TEST(OverloadTest, RejectNewKeepsOldestRuns) {
  EXPECT_EQ(RunPolicy(ShedPolicy::kRejectNew),
            (std::vector<double>{50, 40}));
}

TEST(OverloadTest, ShedOldestKeepsNewestRuns) {
  EXPECT_EQ(RunPolicy(ShedPolicy::kShedOldest), (std::vector<double>{40}));
}

TEST(OverloadTest, ShedLowestBoundKeepsStrongestRuns) {
  EXPECT_EQ(RunPolicy(ShedPolicy::kShedLowestScoreBound),
            (std::vector<double>{50, 40}));
}

// The acceptance property for ranking-aware shedding: on an adversarial
// single-partition stream, a modest budget (here 8*k, well past the >= 4*k
// floor) with kShedLowestScoreBound must reproduce the unbounded engine's
// top-k exactly. RANK BY a.price gives every run a point score bound at
// birth, so the retained set is exactly the budget-many strongest
// candidates; the slack over 4*k absorbs retained runs that never
// complete near window boundaries.
std::vector<RankedResult> RunBudgeted(const SchemaPtr& schema,
                                      const std::vector<Event>& events,
                                      const std::string& query,
                                      size_t budget, ShedPolicy policy,
                                      uint64_t* sheds) {
  EngineOptions engine_options;
  engine_options.max_runs_per_partition = budget;
  engine_options.shed_policy = policy;
  Engine engine(engine_options);
  EXPECT_TRUE(engine.RegisterSchema(schema).ok());
  CollectSink sink;
  const Status s = engine.RegisterQuery("q", query, QueryOptions{}, &sink);
  EXPECT_TRUE(s.ok()) << s.ToString();
  for (const Event& e : events) {
    EXPECT_TRUE(engine.Push(Event(e)).ok());
  }
  engine.Finish();
  if (sheds != nullptr) {
    *sheds = engine.GetQueryMetrics("q")->matcher.runs_dropped_capacity;
  }
  return sink.results();
}

TEST(OverloadTest, LowestBoundShedPreservesTopKOfUnboundedBaseline) {
  StockOptions options;
  options.num_symbols = 1;  // single partition: worst case for one budget
  options.v_probability = 0.03;
  options.base.interval_micros = 1000;
  StockGenerator gen(options);
  const std::vector<Event> events = gen.Take(4000);

  const std::string query =
      "SELECT a.symbol, a.price FROM Stock MATCH PATTERN SEQ(a, b+, c) "
      "PARTITION BY symbol "
      "WHERE b[i].price < b[i-1].price AND c.price > a.price "
      "WITHIN 100 MILLISECONDS "
      "RANK BY a.price DESC LIMIT 5 EMIT ON WINDOW CLOSE";

  const std::vector<RankedResult> unbounded = RunBudgeted(
      gen.schema(), events, query, 0, ShedPolicy::kShedOldest, nullptr);
  ASSERT_FALSE(unbounded.empty());

  uint64_t sheds = 0;
  const std::vector<RankedResult> budgeted =
      RunBudgeted(gen.schema(), events, query, 40,
                  ShedPolicy::kShedLowestScoreBound, &sheds);
  EXPECT_GT(sheds, 0u) << "budget never bound: test is vacuous";

  ASSERT_EQ(unbounded.size(), budgeted.size());
  for (size_t i = 0; i < unbounded.size(); ++i) {
    EXPECT_EQ(unbounded[i].window_id, budgeted[i].window_id) << "@" << i;
    EXPECT_EQ(unbounded[i].rank, budgeted[i].rank) << "@" << i;
    EXPECT_EQ(unbounded[i].match.score, budgeted[i].match.score) << "@" << i;
    EXPECT_EQ(unbounded[i].match.row, budgeted[i].match.row) << "@" << i;
  }
}

}  // namespace
}  // namespace cepr
