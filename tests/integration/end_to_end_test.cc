// Whole-system scenarios over the three demo domains (stock, health,
// traffic), exercising Engine + language + matcher + ranking together.

#include <gtest/gtest.h>

#include "runtime/engine.h"
#include "workload/health.h"
#include "workload/stock.h"
#include "workload/traffic.h"

namespace cepr {
namespace {

TEST(EndToEndTest, StockCrashRecoveryRanked) {
  Engine engine;
  StockOptions gen_options;
  gen_options.num_symbols = 5;
  gen_options.v_probability = 0.02;
  StockGenerator gen(gen_options);
  ASSERT_TRUE(engine.RegisterSchema(gen.schema()).ok());

  CollectSink sink;
  ASSERT_TRUE(engine
                  .RegisterQuery(
                      "crash",
                      "SELECT a.symbol, a.price, MIN(b.price), c.price "
                      "FROM Stock MATCH PATTERN SEQ(a, b+, c) "
                      "PARTITION BY symbol "
                      "WHERE b[i].price < b[i-1].price "
                      "  AND b[1].price < a.price AND c.price > a.price "
                      "WITHIN 100 MILLISECONDS "
                      "RANK BY (a.price - MIN(b.price)) / a.price DESC "
                      "LIMIT 3 EMIT ON WINDOW CLOSE",
                      QueryOptions{}, &sink)
                  .ok());

  for (Event& e : gen.Take(10000)) ASSERT_TRUE(engine.Push(std::move(e)).ok());
  engine.Finish();

  ASSERT_FALSE(sink.results().empty());
  // Per window: at most 3 results, ranks 0..2 in order, scores non-increasing.
  int64_t window = -1;
  size_t expected_rank = 0;
  double prev_score = 0;
  for (const RankedResult& r : sink.results()) {
    if (r.window_id != window) {
      window = r.window_id;
      expected_rank = 0;
    } else {
      EXPECT_LE(r.match.score, prev_score);
    }
    EXPECT_EQ(r.rank, expected_rank++);
    EXPECT_LE(r.rank, 2u);
    EXPECT_GT(r.match.score, 0.0);
    prev_score = r.match.score;
  }
}

TEST(EndToEndTest, HealthDeteriorationAlarm) {
  Engine engine;
  HealthOptions gen_options;
  gen_options.num_patients = 5;
  gen_options.episode_probability = 0.01;
  HealthGenerator gen(gen_options);
  ASSERT_TRUE(engine.RegisterSchema(gen.schema()).ok());

  CollectSink sink;
  // Sustained heart-rate climb with sagging SpO2, ranked by severity.
  ASSERT_TRUE(engine
                  .RegisterQuery(
                      "alarm",
                      "SELECT a.patient, MAX(r.heart_rate), MIN(r.spo2) "
                      "FROM Vitals MATCH PATTERN SEQ(a, r+) "
                      "PARTITION BY patient "
                      "WHERE r[i].heart_rate > r[i-1].heart_rate + 5 "
                      "  AND r[1].heart_rate > a.heart_rate + 5 "
                      "  AND COUNT(r) >= 3 "
                      "WITHIN 1 SECONDS "
                      "RANK BY MAX(r.heart_rate) - a.heart_rate DESC "
                      "LIMIT 5 EMIT ON WINDOW CLOSE",
                      QueryOptions{}, &sink)
                  .ok());

  for (Event& e : gen.Take(20000)) ASSERT_TRUE(engine.Push(std::move(e)).ok());
  engine.Finish();

  ASSERT_FALSE(sink.results().empty()) << "no deterioration episodes detected";
  for (const RankedResult& r : sink.results()) {
    EXPECT_GT(r.match.score, 10.0);  // at least 3 climbs of >5 bpm
  }
}

TEST(EndToEndTest, TrafficJamDetection) {
  Engine engine;
  TrafficOptions gen_options;
  gen_options.num_sensors = 4;
  gen_options.jam_probability = 0.01;
  TrafficGenerator gen(gen_options);
  ASSERT_TRUE(engine.RegisterSchema(gen.schema()).ok());

  CollectSink sink;
  ASSERT_TRUE(engine
                  .RegisterQuery(
                      "jam",
                      "SELECT a.sensor, a.speed, MIN(d.speed), COUNT(d) "
                      "FROM Traffic MATCH PATTERN SEQ(a, d+) "
                      "PARTITION BY sensor "
                      "WHERE a.speed > 60 "
                      "  AND d[i].speed < d[i-1].speed * 0.9 "
                      "  AND d[1].speed < a.speed * 0.9 "
                      "  AND COUNT(d) >= 3 "
                      "WITHIN 2 SECONDS "
                      "RANK BY a.speed - MIN(d.speed) DESC "
                      "LIMIT 3 EMIT ON WINDOW CLOSE",
                      QueryOptions{}, &sink)
                  .ok());

  for (Event& e : gen.Take(20000)) ASSERT_TRUE(engine.Push(std::move(e)).ok());
  engine.Finish();

  ASSERT_FALSE(sink.results().empty()) << "no jams detected";
  for (const RankedResult& r : sink.results()) {
    // Speed collapsed by the score amount.
    EXPECT_GT(r.match.score, 10.0);
  }
}

TEST(EndToEndTest, EmitEveryNEventsWindows) {
  Engine engine;
  StockOptions gen_options;
  gen_options.v_probability = 0.05;
  gen_options.num_symbols = 1;
  StockGenerator gen(gen_options);
  ASSERT_TRUE(engine.RegisterSchema(gen.schema()).ok());
  CollectSink sink;
  ASSERT_TRUE(engine
                  .RegisterQuery(
                      "q",
                      "SELECT a.price FROM Stock MATCH PATTERN SEQ(a, b+, c) "
                      "WHERE b[i].price < b[i-1].price "
                      "  AND b[1].price < a.price AND c.price > a.price "
                      "WITHIN 100 MILLISECONDS "
                      "RANK BY a.price - MIN(b.price) DESC "
                      "LIMIT 2 EMIT EVERY 500 EVENTS",
                      QueryOptions{}, &sink)
                  .ok());
  for (Event& e : gen.Take(5000)) ASSERT_TRUE(engine.Push(std::move(e)).ok());
  engine.Finish();

  ASSERT_FALSE(sink.results().empty());
  // Window ids correspond to 500-event blocks; at most 2 results per block.
  std::map<int64_t, int> per_window;
  for (const RankedResult& r : sink.results()) ++per_window[r.window_id];
  for (const auto& [window, count] : per_window) {
    EXPECT_LE(count, 2) << "window " << window;
    EXPECT_LT(window, 10) << "window id out of range for 5000 events";
  }
  EXPECT_GT(per_window.size(), 1u);
}

TEST(EndToEndTest, EagerEmissionConvergesToTrueTopK) {
  // EMIT ON COMPLETE streams provisional results; the last emission for the
  // stream's single window must be the true best score.
  Engine engine;
  StockOptions gen_options;
  gen_options.v_probability = 0.05;
  gen_options.num_symbols = 1;
  StockGenerator gen(gen_options);
  ASSERT_TRUE(engine.RegisterSchema(gen.schema()).ok());
  CollectSink eager_sink;
  CollectSink buffered_sink;
  const std::string base =
      "SELECT a.price FROM Stock MATCH PATTERN SEQ(a, b+, c) "
      "WHERE b[i].price < b[i-1].price "
      "  AND b[1].price < a.price AND c.price > a.price "
      "WITHIN 100 MILLISECONDS "
      "RANK BY (a.price - MIN(b.price)) / a.price DESC LIMIT 1 ";
  ASSERT_TRUE(engine
                  .RegisterQuery("eager", base + "EMIT ON COMPLETE",
                                 QueryOptions{}, &eager_sink)
                  .ok());
  ASSERT_TRUE(engine
                  .RegisterQuery("buffered", base + "EMIT EVERY 4000 EVENTS",
                                 QueryOptions{}, &buffered_sink)
                  .ok());
  for (Event& e : gen.Take(4000)) ASSERT_TRUE(engine.Push(std::move(e)).ok());
  engine.Finish();

  ASSERT_FALSE(eager_sink.results().empty());
  ASSERT_EQ(buffered_sink.results().size(), 1u);
  const RankedResult& final_eager = eager_sink.results().back();
  EXPECT_TRUE(final_eager.provisional);
  EXPECT_DOUBLE_EQ(final_eager.match.score,
                   buffered_sink.results()[0].match.score);
  // Provisional scores improve monotonically at rank 0 emissions.
  double best = -1;
  for (const RankedResult& r : eager_sink.results()) {
    if (r.rank == 0) {
      EXPECT_GE(r.match.score, best);
      best = r.match.score;
    }
  }
}

TEST(EndToEndTest, CapacityBoundHoldsUnderSkipTillAny) {
  Engine engine;
  StockOptions gen_options;
  gen_options.num_symbols = 1;
  gen_options.v_probability = 0.1;
  StockGenerator gen(gen_options);
  ASSERT_TRUE(engine.RegisterSchema(gen.schema()).ok());
  CollectSink sink;
  QueryOptions options;
  options.matcher.max_active_runs = 256;
  ASSERT_TRUE(engine
                  .RegisterQuery(
                      "q",
                      "SELECT a.price FROM Stock MATCH PATTERN SEQ(a, b+, c) "
                      "USING SKIP_TILL_ANY_MATCH "
                      "WHERE b[i].price < a.price AND c.price > a.price "
                      "WITHIN 50 MILLISECONDS",
                      options, &sink)
                  .ok());
  for (Event& e : gen.Take(3000)) ASSERT_TRUE(engine.Push(std::move(e)).ok());
  engine.Finish();
  const QueryMetrics m = engine.GetQuery("q").value()->metrics();
  EXPECT_LE(m.matcher.peak_active_runs, 256u);
  EXPECT_GT(m.matcher.runs_forked, 0u);
}

}  // namespace
}  // namespace cepr
