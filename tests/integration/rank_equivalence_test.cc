// Property suite: every ranker policy must produce identical final results
// for buffered emission — kNaiveSort is the semantic reference, kHeap the
// incremental implementation, kPruned adds partial-match pruning which must
// never change the answer, only the work done.

#include <gtest/gtest.h>

#include "runtime/engine.h"
#include "workload/stock.h"

namespace cepr {
namespace {

struct Case {
  int limit;
  bool desc;
  int num_events;
  double v_probability;
};

class RankEquivalenceTest : public ::testing::TestWithParam<Case> {};

std::string DipQuery(int limit, bool desc) {
  std::string q =
      "SELECT a.price, MIN(b.price), c.price "
      "FROM Stock MATCH PATTERN SEQ(a, b+, c) "
      "PARTITION BY symbol "
      "WHERE b[i].price < b[i-1].price AND b[1].price < a.price "
      "  AND c.price > a.price "
      "WITHIN 200 MILLISECONDS "
      "RANK BY (a.price - MIN(b.price)) / a.price ";
  q += desc ? "DESC " : "ASC ";
  q += "LIMIT " + std::to_string(limit) + " EMIT ON WINDOW CLOSE";
  return q;
}

std::vector<RankedResult> RunWithPolicy(RankerPolicy policy, const Case& c) {
  Engine engine;
  StockOptions gen_options;
  gen_options.num_symbols = 4;
  gen_options.v_probability = c.v_probability;
  gen_options.base.interval_micros = 1000;
  StockGenerator gen(gen_options);
  auto status = engine.RegisterSchema(gen.schema());
  EXPECT_TRUE(status.ok()) << status.ToString();

  CollectSink sink;
  QueryOptions options;
  options.ranker = policy;
  status = engine.RegisterQuery("q", DipQuery(c.limit, c.desc), options, &sink);
  EXPECT_TRUE(status.ok()) << status.ToString();

  for (Event& e : gen.Take(static_cast<size_t>(c.num_events))) {
    status = engine.Push(std::move(e));
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  engine.Finish();
  return sink.results();
}

void ExpectSameResults(const std::vector<RankedResult>& a,
                       const std::vector<RankedResult>& b, const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].window_id, b[i].window_id) << label << " @" << i;
    EXPECT_EQ(a[i].rank, b[i].rank) << label << " @" << i;
    // Note: match.id is the internal detection counter and shifts when the
    // pruner removes runs before they detect; identity is the match content
    // (span + outputs + score), which must agree exactly.
    EXPECT_EQ(a[i].match.first_ts, b[i].match.first_ts) << label << " @" << i;
    EXPECT_EQ(a[i].match.last_ts, b[i].match.last_ts) << label << " @" << i;
    EXPECT_DOUBLE_EQ(a[i].match.score, b[i].match.score) << label << " @" << i;
    EXPECT_EQ(a[i].match.row, b[i].match.row) << label << " @" << i;
  }
}

TEST_P(RankEquivalenceTest, AllPoliciesAgree) {
  const Case c = GetParam();
  const auto naive = RunWithPolicy(RankerPolicy::kNaiveSort, c);
  const auto heap = RunWithPolicy(RankerPolicy::kHeap, c);
  const auto pruned = RunWithPolicy(RankerPolicy::kPruned, c);
  EXPECT_FALSE(naive.empty()) << "workload produced no matches; weak test";
  ExpectSameResults(naive, heap, "naive-vs-heap");
  ExpectSameResults(naive, pruned, "naive-vs-pruned");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RankEquivalenceTest,
    ::testing::Values(Case{1, true, 3000, 0.02}, Case{5, true, 3000, 0.02},
                      Case{20, true, 3000, 0.05}, Case{5, false, 3000, 0.02},
                      Case{3, true, 6000, 0.01}));

TEST(RankPruningEffectTest, PruningActuallyFires) {
  // Sanity for the whole E3 experiment: under global (EMIT ON COMPLETE)
  // ranking with a small k and dense matches, the pruner must discard
  // runs, while the answers stay identical (checked by the property
  // above). Time-windowed emission restricts pruning to runs trapped in
  // the current window, so the global mode is where the effect shows.
  Engine engine;
  StockOptions gen_options;
  gen_options.num_symbols = 2;
  gen_options.v_probability = 0.05;
  StockGenerator gen(gen_options);
  ASSERT_TRUE(engine.RegisterSchema(gen.schema()).ok());
  CollectSink sink;
  QueryOptions options;
  options.ranker = RankerPolicy::kPruned;
  const std::string query =
      "SELECT a.price FROM Stock MATCH PATTERN SEQ(a, b+, c) "
      "PARTITION BY symbol "
      "WHERE b[i].price < b[i-1].price AND b[1].price < a.price "
      "  AND c.price > a.price "
      "WITHIN 200 MILLISECONDS "
      "RANK BY (a.price - MIN(b.price)) / a.price ASC "
      "LIMIT 1 EMIT ON COMPLETE";
  ASSERT_TRUE(engine.RegisterQuery("q", query, options, &sink).ok());
  for (Event& e : gen.Take(5000)) ASSERT_TRUE(engine.Push(std::move(e)).ok());
  engine.Finish();

  const QueryMetrics m = engine.GetQuery("q").value()->metrics();
  EXPECT_GT(m.prune_checks, 0u);
  EXPECT_GT(m.prunes, 0u);
  EXPECT_EQ(m.matcher.runs_pruned_score, m.prunes);
}

TEST(RankPruningEffectTest, EagerPrunedMatchesEagerHeapFinalTopK) {
  // Equivalence also holds in the global eager mode: the final provisional
  // top-1 of heap and pruned configurations must coincide.
  auto run = [](RankerPolicy policy) {
    Engine engine;
    StockOptions gen_options;
    gen_options.num_symbols = 2;
    gen_options.v_probability = 0.05;
    StockGenerator gen(gen_options);
    EXPECT_TRUE(engine.RegisterSchema(gen.schema()).ok());
    CollectSink sink;
    QueryOptions options;
    options.ranker = policy;
    const std::string query =
        "SELECT a.price FROM Stock MATCH PATTERN SEQ(a, b+, c) "
        "PARTITION BY symbol "
        "WHERE b[i].price < b[i-1].price AND b[1].price < a.price "
        "  AND c.price > a.price "
        "WITHIN 200 MILLISECONDS "
        "RANK BY (a.price - MIN(b.price)) / a.price DESC "
        "LIMIT 1 EMIT ON COMPLETE";
    EXPECT_TRUE(engine.RegisterQuery("q", query, options, &sink).ok());
    for (Event& e : gen.Take(5000)) EXPECT_TRUE(engine.Push(std::move(e)).ok());
    engine.Finish();
    EXPECT_FALSE(sink.results().empty());
    return sink.results().empty() ? Match{} : sink.results().back().match;
  };
  const Match heap_best = run(RankerPolicy::kHeap);
  const Match pruned_best = run(RankerPolicy::kPruned);
  EXPECT_EQ(heap_best.first_ts, pruned_best.first_ts);
  EXPECT_EQ(heap_best.last_ts, pruned_best.last_ts);
  EXPECT_DOUBLE_EQ(heap_best.score, pruned_best.score);
}

TEST(RankDeterminismTest, RepeatedRunsIdentical) {
  const Case c{5, true, 2000, 0.03};
  const auto r1 = RunWithPolicy(RankerPolicy::kPruned, c);
  const auto r2 = RunWithPolicy(RankerPolicy::kPruned, c);
  ExpectSameResults(r1, r2, "repeat");
}

}  // namespace
}  // namespace cepr
