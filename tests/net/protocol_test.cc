// Wire-protocol unit suite: frame round trips over a socketpair, clean
// close vs torn-stream detection, CRC rejection, oversized-length
// rejection, and encode/decode round trips of the reply and result
// message bodies (scores must survive as exact IEEE-754 bit patterns).

#include "net/protocol.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"

namespace cepr {
namespace net {
namespace {

/// Connected AF_UNIX stream pair; both ends close on destruction.
struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
  void CloseA() {
    ::close(a);
    a = -1;
  }
};

TEST(FrameTest, RoundTripsPayloads) {
  SocketPair sp;
  const std::vector<std::string> payloads = {
      "", "x", std::string("\0\1\2\xff", 4), std::string(100000, 'q')};
  for (const std::string& payload : payloads) {
    ASSERT_TRUE(WriteFrame(sp.a, payload).ok());
    std::string got;
    ASSERT_TRUE(ReadFrame(sp.b, &got).ok());
    EXPECT_EQ(got, payload);
  }
}

TEST(FrameTest, InterleavedFramesStayFramed) {
  SocketPair sp;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(WriteFrame(sp.a, "frame-" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 100; ++i) {
    std::string got;
    ASSERT_TRUE(ReadFrame(sp.b, &got).ok());
    EXPECT_EQ(got, "frame-" + std::to_string(i));
  }
}

TEST(FrameTest, CleanCloseAtBoundaryIsDistinguishable) {
  SocketPair sp;
  ASSERT_TRUE(WriteFrame(sp.a, "last").ok());
  sp.CloseA();
  std::string got;
  ASSERT_TRUE(ReadFrame(sp.b, &got).ok());
  EXPECT_EQ(got, "last");
  const Status s = ReadFrame(sp.b, &got);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(IsCleanClose(s)) << s.ToString();
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
}

TEST(FrameTest, EofInsideHeaderIsTorn) {
  SocketPair sp;
  const char partial[3] = {1, 0, 0};
  ASSERT_EQ(::write(sp.a, partial, sizeof(partial)),
            static_cast<ssize_t>(sizeof(partial)));
  sp.CloseA();
  std::string got;
  const Status s = ReadFrame(sp.b, &got);
  EXPECT_EQ(s.code(), StatusCode::kCorrupt) << s.ToString();
  EXPECT_FALSE(IsCleanClose(s));
}

TEST(FrameTest, EofInsidePayloadIsTorn) {
  SocketPair sp;
  BinWriter w;
  w.U32(100);  // length promises 100 bytes
  w.U32(Crc32("x", 1));
  const std::string header = w.Take();
  ASSERT_EQ(::write(sp.a, header.data(), header.size()),
            static_cast<ssize_t>(header.size()));
  ASSERT_EQ(::write(sp.a, "x", 1), 1);  // only 1 arrives
  sp.CloseA();
  std::string got;
  const Status s = ReadFrame(sp.b, &got);
  EXPECT_EQ(s.code(), StatusCode::kCorrupt) << s.ToString();
}

TEST(FrameTest, CrcMismatchIsCorrupt) {
  SocketPair sp;
  BinWriter w;
  w.U32(5);
  w.U32(Crc32("hello", 5) ^ 0x1);  // one bit off
  std::string wire = w.Take();
  wire += "hello";
  ASSERT_EQ(::write(sp.a, wire.data(), wire.size()),
            static_cast<ssize_t>(wire.size()));
  std::string got;
  const Status s = ReadFrame(sp.b, &got);
  EXPECT_EQ(s.code(), StatusCode::kCorrupt) << s.ToString();
  EXPECT_NE(s.ToString().find("checksum"), std::string::npos) << s.ToString();
}

TEST(FrameTest, OversizedLengthIsRejectedWithoutAllocating) {
  SocketPair sp;
  BinWriter w;
  w.U32(0xFFFFFFFFu);  // 4GB "frame": a bit-flipped length field
  w.U32(0);
  const std::string header = w.Take();
  ASSERT_EQ(::write(sp.a, header.data(), header.size()),
            static_cast<ssize_t>(header.size()));
  std::string got;
  const Status s = ReadFrame(sp.b, &got);
  EXPECT_EQ(s.code(), StatusCode::kCorrupt) << s.ToString();
  EXPECT_NE(s.ToString().find("64MB"), std::string::npos) << s.ToString();
}

TEST(FrameTest, WriterRejectsOversizedPayload) {
  SocketPair sp;
  // Don't materialize 64MB: the check is on size(), so a sparse string works.
  std::string big;
  big.resize(kMaxFrameBytes + 1);
  EXPECT_EQ(WriteFrame(sp.a, big).code(), StatusCode::kInvalidArgument);
}

TEST(FrameTest, GarbageBytesNeverCrashTheReader) {
  Random rng(0x6A5BA6E);
  for (int i = 0; i < 200; ++i) {
    SocketPair sp;
    const size_t n = 1 + rng.Uniform(64);
    std::string junk(n, '\0');
    for (char& c : junk) c = static_cast<char>(rng.Uniform(256));
    ASSERT_EQ(::write(sp.a, junk.data(), junk.size()),
              static_cast<ssize_t>(junk.size()));
    sp.CloseA();
    // Read frames until an error; every verdict must be a clean status.
    while (true) {
      std::string got;
      const Status s = ReadFrame(sp.b, &got);
      if (s.ok()) continue;  // junk happened to frame correctly; keep going
      EXPECT_TRUE(s.code() == StatusCode::kCorrupt || IsCleanClose(s))
          << s.ToString();
      break;
    }
  }
}

TEST(MessageTest, ReplyRoundTrips) {
  const std::string frame =
      EncodeReply(Status::NotFound("no such query"), "extra");
  BinReader r(frame);
  uint8_t type = 0;
  ASSERT_TRUE(r.U8(&type));
  EXPECT_EQ(type, static_cast<uint8_t>(MsgType::kReply));
  uint8_t code = 0;
  std::string message;
  std::string payload;
  ASSERT_TRUE(DecodeReplyBody(&r, &code, &message, &payload));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(static_cast<StatusCode>(code), StatusCode::kNotFound);
  EXPECT_EQ(message, "no such query");
  EXPECT_EQ(payload, "extra");
}

TEST(MessageTest, ResultRoundTripsBitExactly) {
  RankedResult res;
  res.window_id = -7;
  res.rank = 3;
  res.provisional = true;
  res.match.score = std::nextafter(0.1, 1.0);  // not representable in text
  res.match.first_ts = 1111;
  res.match.last_ts = 2222;
  res.match.last_sequence = 987654321;
  res.match.row = {Value::Int(42), Value::Float(2.5), Value::String("sym"),
                   Value::Bool(true), Value::Null()};

  const std::string frame = EncodeResult("crash", res);
  BinReader r(frame);
  uint8_t type = 0;
  ASSERT_TRUE(r.U8(&type));
  EXPECT_EQ(type, static_cast<uint8_t>(MsgType::kResult));
  WireResult got;
  ASSERT_TRUE(DecodeResultBody(&r, &got));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(got.query, "crash");
  EXPECT_EQ(got.window_id, -7);
  EXPECT_EQ(got.rank, 3u);
  EXPECT_TRUE(got.provisional);
  // Bitwise equality, not EXPECT_DOUBLE_EQ: the wire carries bit patterns.
  EXPECT_EQ(got.score, res.match.score);
  EXPECT_EQ(got.first_ts, 1111);
  EXPECT_EQ(got.last_ts, 2222);
  EXPECT_EQ(got.last_sequence, 987654321u);
  EXPECT_EQ(got.row, res.match.row);
}

TEST(MessageTest, TruncatedResultBodiesFailCleanly) {
  RankedResult res;
  res.match.row = {Value::Int(1), Value::String("abc")};
  const std::string frame = EncodeResult("q", res);
  for (size_t cut = 1; cut < frame.size(); ++cut) {
    BinReader r(frame.data(), cut);
    uint8_t type = 0;
    ASSERT_TRUE(r.U8(&type));
    WireResult got;
    EXPECT_FALSE(DecodeResultBody(&r, &got) && r.AtEnd())
        << "cut at " << cut << " decoded";
  }
}

TEST(MessageTest, ResultCountFieldCannotOverAllocate) {
  // A result body claiming 2^32-1 row values with no bytes behind it must
  // fail the plausibility check, not loop or reserve gigabytes.
  BinWriter w;
  w.Str("q");
  w.I64(0);
  w.U64(0);
  w.Bool(false);
  w.F64(0.0);
  w.I64(0);
  w.I64(0);
  w.U64(0);
  w.U32(0xFFFFFFFFu);
  const std::string body = w.Take();
  BinReader r(body);
  WireResult got;
  EXPECT_FALSE(DecodeResultBody(&r, &got));
}

}  // namespace
}  // namespace net
}  // namespace cepr
