#include "lang/analyzer.h"

#include <gtest/gtest.h>

#include "lang/parser.h"
#include "testing/helpers.h"

namespace cepr {
namespace {

using testing::StockSchema;

Result<AnalyzedQuery> AnalyzeText(const std::string& text) {
  CEPR_ASSIGN_OR_RETURN(QueryAst ast, ParseQuery(text));
  return Analyze(std::move(ast), StockSchema());
}

TEST(AnalyzerTest, ResolvesFullQuery) {
  auto a = AnalyzeText(
      "SELECT a.price AS p0, MIN(b.price), COUNT(b) "
      "FROM Stock MATCH PATTERN SEQ(a, b+, c) "
      "PARTITION BY symbol "
      "WHERE b[i].price < a.price "
      "WITHIN 1 MINUTES "
      "RANK BY a.price - MIN(b.price) DESC LIMIT 3 EMIT ON WINDOW CLOSE");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a->layout.num_vars(), 3u);
  EXPECT_EQ(a->partition_attr_index, 0);
  EXPECT_EQ(a->output_names,
            (std::vector<std::string>{"p0", "min_b_price", "count_b"}));
  EXPECT_EQ(a->output_types,
            (std::vector<ValueType>{ValueType::kFloat, ValueType::kFloat,
                                    ValueType::kInt}));
  EXPECT_EQ(a->ast.rank_by->result_type, ValueType::kFloat);
}

TEST(AnalyzerTest, SelectStarExpansion) {
  auto a = AnalyzeText("SELECT * FROM Stock MATCH PATTERN SEQ(a, b+, c)");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  // a: 3 attrs, b: COUNT, c: 3 attrs.
  ASSERT_EQ(a->output_names.size(), 7u);
  EXPECT_EQ(a->output_names[0], "a_symbol");
  EXPECT_EQ(a->output_names[3], "count_b");
  EXPECT_EQ(a->output_names[4], "c_symbol");
}

TEST(AnalyzerTest, SelectStarSkipsNegatedVars) {
  auto a = AnalyzeText("SELECT * FROM Stock MATCH PATTERN SEQ(a, !n, c)");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  for (const std::string& name : a->output_names) {
    EXPECT_EQ(name.find("n_"), std::string::npos) << name;
  }
}

TEST(AnalyzerTest, EmptyPatternRejected) {
  // Unparseable anyway, but the analyzer also guards directly.
  QueryAst ast;
  ast.stream_name = "Stock";
  EXPECT_FALSE(Analyze(std::move(ast), StockSchema()).ok());
}

TEST(AnalyzerTest, DuplicateVariablesRejected) {
  auto a = AnalyzeText("SELECT * FROM Stock MATCH PATTERN SEQ(a, a)");
  ASSERT_FALSE(a.ok());
  EXPECT_NE(a.status().message().find("duplicate"), std::string::npos);
}

TEST(AnalyzerTest, NegationPlacementRules) {
  EXPECT_FALSE(AnalyzeText("SELECT * FROM Stock MATCH PATTERN SEQ(!n, c)").ok());
  EXPECT_FALSE(AnalyzeText("SELECT * FROM Stock MATCH PATTERN SEQ(a, !n)").ok());
  EXPECT_FALSE(
      AnalyzeText("SELECT * FROM Stock MATCH PATTERN SEQ(a, !n+, c)").ok());
  EXPECT_FALSE(
      AnalyzeText("SELECT * FROM Stock MATCH PATTERN SEQ(a, !m, !n, c)").ok());
  EXPECT_TRUE(AnalyzeText("SELECT * FROM Stock MATCH PATTERN SEQ(a, !n, c)").ok());
}

TEST(AnalyzerTest, AllNegatedRejected) {
  // No positive anchor at all (also caught by the edge rules).
  EXPECT_FALSE(AnalyzeText("SELECT * FROM Stock MATCH PATTERN SEQ(!n)").ok());
}

TEST(AnalyzerTest, UnknownPartitionAttributeRejected) {
  auto a = AnalyzeText(
      "SELECT * FROM Stock MATCH PATTERN SEQ(a) PARTITION BY nosuch");
  ASSERT_FALSE(a.ok());
  EXPECT_EQ(a.status().code(), StatusCode::kNotFound);
}

TEST(AnalyzerTest, WherePredicateMustTypeCheck) {
  EXPECT_FALSE(
      AnalyzeText("SELECT * FROM Stock MATCH PATTERN SEQ(a) WHERE a.price").ok());
  EXPECT_FALSE(
      AnalyzeText("SELECT * FROM Stock MATCH PATTERN SEQ(a) WHERE z.price > 0")
          .ok());
}

TEST(AnalyzerTest, RankByMustBeNumeric) {
  auto str = AnalyzeText(
      "SELECT * FROM Stock MATCH PATTERN SEQ(a) RANK BY a.symbol DESC");
  ASSERT_FALSE(str.ok());
  EXPECT_NE(str.status().message().find("numeric"), std::string::npos);

  auto boolean = AnalyzeText(
      "SELECT * FROM Stock MATCH PATTERN SEQ(a) RANK BY a.price > 2 DESC");
  EXPECT_FALSE(boolean.ok());
}

TEST(AnalyzerTest, WindowCloseRequiresWithin) {
  auto a = AnalyzeText(
      "SELECT * FROM Stock MATCH PATTERN SEQ(a) EMIT ON WINDOW CLOSE");
  ASSERT_FALSE(a.ok());
  EXPECT_NE(a.status().message().find("WITHIN"), std::string::npos);

  EXPECT_TRUE(AnalyzeText("SELECT * FROM Stock MATCH PATTERN SEQ(a) "
                          "WITHIN 1 SECONDS EMIT ON WINDOW CLOSE")
                  .ok());
}

TEST(AnalyzerTest, DerivedOutputNamesForExpressions) {
  auto a = AnalyzeText(
      "SELECT a.price + 1, a.price FROM Stock MATCH PATTERN SEQ(a)");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->output_names[0], "col0");
  EXPECT_EQ(a->output_names[1], "a_price");
}

TEST(AnalyzerTest, SelectCannotReferenceIterations) {
  auto a = AnalyzeText(
      "SELECT b[i].price FROM Stock MATCH PATTERN SEQ(a, b+, c)");
  EXPECT_FALSE(a.ok());
}

TEST(AnalyzerTest, LayoutMarksKleeneAndNegated) {
  auto a = AnalyzeText("SELECT * FROM Stock MATCH PATTERN SEQ(a, b+, !n, c)");
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(a->layout.var(0).is_kleene);
  EXPECT_TRUE(a->layout.var(1).is_kleene);
  EXPECT_TRUE(a->layout.var(2).is_negated);
  EXPECT_FALSE(a->layout.var(3).is_negated);
  EXPECT_EQ(a->layout.VarIndex("B").value(), 1);  // case-insensitive
}

}  // namespace
}  // namespace cepr
