#include "lang/parser.h"

#include <gtest/gtest.h>

namespace cepr {
namespace {

constexpr char kFullQuery[] =
    "SELECT a.symbol, a.price AS start, LAST(b).price, c.price "
    "FROM Stock "
    "MATCH PATTERN SEQ(a, b+, !n, c) "
    "USING SKIP_TILL_ANY_MATCH "
    "PARTITION BY symbol "
    "WHERE a.price > 20 AND b[i].price < b[i-1].price AND c.price > a.price "
    "WITHIN 10 MINUTES "
    "RANK BY (a.price - MIN(b.price)) / a.price DESC "
    "LIMIT 5 "
    "EMIT ON WINDOW CLOSE;";

TEST(ParserTest, FullQueryParses) {
  auto q = ParseQuery(kFullQuery);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->stream_name, "Stock");
  EXPECT_EQ(q->select.size(), 4u);
  EXPECT_EQ(q->select[1].alias, "start");
  ASSERT_EQ(q->pattern.size(), 4u);
  EXPECT_EQ(q->pattern[0].var, "a");
  EXPECT_FALSE(q->pattern[0].kleene);
  EXPECT_TRUE(q->pattern[1].kleene);
  EXPECT_TRUE(q->pattern[2].negated);
  EXPECT_EQ(q->pattern[2].var, "n");
  EXPECT_EQ(q->strategy, SelectionStrategy::kSkipTillAny);
  EXPECT_EQ(q->partition_attr, "symbol");
  ASSERT_NE(q->where, nullptr);
  EXPECT_EQ(q->within_micros, 10 * kMicrosPerMinute);
  ASSERT_NE(q->rank_by, nullptr);
  EXPECT_TRUE(q->rank_desc);
  EXPECT_EQ(q->limit, 5);
  EXPECT_EQ(q->emit, EmitPolicy::kOnWindowClose);
}

TEST(ParserTest, MinimalQueryDefaults) {
  auto q = ParseQuery("SELECT * FROM S MATCH PATTERN SEQ(x)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->select.empty());  // SELECT *
  EXPECT_EQ(q->strategy, SelectionStrategy::kSkipTillNext);
  EXPECT_TRUE(q->partition_attr.empty());
  EXPECT_EQ(q->where, nullptr);
  EXPECT_EQ(q->within_micros, 0);
  EXPECT_EQ(q->rank_by, nullptr);
  EXPECT_EQ(q->limit, -1);
  EXPECT_EQ(q->emit, EmitPolicy::kOnComplete);
}

TEST(ParserTest, TypedPatternComponents) {
  auto q = ParseQuery("SELECT * FROM S MATCH PATTERN SEQ(Buy a, Sell b+)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->pattern[0].type_tag, "Buy");
  EXPECT_EQ(q->pattern[0].var, "a");
  EXPECT_EQ(q->pattern[1].type_tag, "Sell");
  EXPECT_TRUE(q->pattern[1].kleene);
}

TEST(ParserTest, StrategySpellings) {
  for (const auto& [text, expect] :
       std::vector<std::pair<std::string, SelectionStrategy>>{
           {"STRICT", SelectionStrategy::kStrictContiguity},
           {"strict_contiguity", SelectionStrategy::kStrictContiguity},
           {"skip_till_next_match", SelectionStrategy::kSkipTillNext},
           {"SKIP_TILL_ANY_MATCH", SelectionStrategy::kSkipTillAny}}) {
    auto q = ParseQuery("SELECT * FROM S MATCH PATTERN SEQ(a) USING " + text);
    ASSERT_TRUE(q.ok()) << text << ": " << q.status().ToString();
    EXPECT_EQ(q->strategy, expect) << text;
  }
  EXPECT_FALSE(
      ParseQuery("SELECT * FROM S MATCH PATTERN SEQ(a) USING bogus").ok());
}

TEST(ParserTest, TimeUnits) {
  for (const auto& [unit, micros] :
       std::vector<std::pair<std::string, Timestamp>>{
           {"MICROSECONDS", 1},
           {"MILLISECONDS", 1000},
           {"SECONDS", kMicrosPerSecond},
           {"MINUTES", kMicrosPerMinute},
           {"HOURS", kMicrosPerHour},
           {"second", kMicrosPerSecond}}) {
    auto q =
        ParseQuery("SELECT * FROM S MATCH PATTERN SEQ(a) WITHIN 2 " + unit);
    ASSERT_TRUE(q.ok()) << unit;
    EXPECT_EQ(q->within_micros, 2 * micros) << unit;
  }
  EXPECT_FALSE(
      ParseQuery("SELECT * FROM S MATCH PATTERN SEQ(a) WITHIN 2 fortnights").ok());
}

TEST(ParserTest, RankAscDesc) {
  auto asc = ParseQuery("SELECT * FROM S MATCH PATTERN SEQ(a) RANK BY a.x ASC");
  ASSERT_TRUE(asc.ok());
  EXPECT_FALSE(asc->rank_desc);
  auto def = ParseQuery("SELECT * FROM S MATCH PATTERN SEQ(a) RANK BY a.x");
  ASSERT_TRUE(def.ok());
  EXPECT_TRUE(def->rank_desc);  // DESC is the default
}

TEST(ParserTest, EmitVariants) {
  auto complete =
      ParseQuery("SELECT * FROM S MATCH PATTERN SEQ(a) EMIT ON COMPLETE");
  ASSERT_TRUE(complete.ok());
  EXPECT_EQ(complete->emit, EmitPolicy::kOnComplete);

  auto every =
      ParseQuery("SELECT * FROM S MATCH PATTERN SEQ(a) EMIT EVERY 100 EVENTS");
  ASSERT_TRUE(every.ok());
  EXPECT_EQ(every->emit, EmitPolicy::kEveryNEvents);
  EXPECT_EQ(every->emit_every_n, 100);

  EXPECT_FALSE(
      ParseQuery("SELECT * FROM S MATCH PATTERN SEQ(a) EMIT EVERY 0 EVENTS").ok());
  EXPECT_FALSE(
      ParseQuery("SELECT * FROM S MATCH PATTERN SEQ(a) EMIT ON SUNSET").ok());
}

TEST(ParserTest, NegativeLimitRejected) {
  // The '-' cannot even start an integer here.
  EXPECT_FALSE(ParseQuery("SELECT * FROM S MATCH PATTERN SEQ(a) LIMIT -1").ok());
}

TEST(ParserTest, ExpressionPrecedence) {
  auto e = ParseExpression("1 + 2 * 3 < 4 AND NOT 5 > 6 OR FALSE").value();
  // ((1 + (2*3)) < 4 AND NOT (5 > 6)) OR FALSE
  EXPECT_EQ(e->ToString(),
            "((((1 + (2 * 3)) < 4) AND NOT ((5 > 6))) OR FALSE)");
}

TEST(ParserTest, UnaryMinusBindsTighterThanMul) {
  auto e = ParseExpression("-2 * 3").value();
  EXPECT_EQ(e->ToString(), "(-(2) * 3)");
}

TEST(ParserTest, IterationIndexForms) {
  EXPECT_EQ(ParseExpression("b[i].x").value()->iter_kind, IterKind::kCurrent);
  EXPECT_EQ(ParseExpression("b[i-1].x").value()->iter_kind, IterKind::kPrev);
  EXPECT_EQ(ParseExpression("b[1].x").value()->iter_kind, IterKind::kFirst);
  EXPECT_FALSE(ParseExpression("b[2].x").ok());
  EXPECT_FALSE(ParseExpression("b[i-2].x").ok());
  EXPECT_FALSE(ParseExpression("b[j].x").ok());
}

TEST(ParserTest, AggregateSyntax) {
  auto min = ParseExpression("MIN(b.price)").value();
  EXPECT_EQ(min->kind, ExprKind::kAggregate);
  EXPECT_EQ(min->agg_func, AggFunc::kMin);
  EXPECT_EQ(min->var_name, "b");
  EXPECT_EQ(min->attr_name, "price");

  auto count = ParseExpression("COUNT(b)").value();
  EXPECT_EQ(count->agg_func, AggFunc::kCount);
  EXPECT_TRUE(count->attr_name.empty());

  auto first = ParseExpression("FIRST(b).price").value();
  EXPECT_EQ(first->agg_func, AggFunc::kFirst);
  EXPECT_EQ(first->attr_name, "price");

  EXPECT_FALSE(ParseExpression("MIN(b)").ok());
  EXPECT_FALSE(ParseExpression("FIRST(b)").ok());
  EXPECT_FALSE(ParseExpression("COUNT(b.price)").ok());
}

TEST(ParserTest, UnknownFunctionRejected) {
  auto r = ParseExpression("FROBNICATE(x.y)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("unknown function"), std::string::npos);
}

TEST(ParserTest, BareIdentifierIsError) {
  EXPECT_FALSE(ParseExpression("price").ok());
  EXPECT_FALSE(ParseExpression("a +").ok());
  EXPECT_FALSE(ParseExpression("(1 + 2").ok());
}

TEST(ParserTest, CreateStreamBasic) {
  auto c = ParseCreateStream(
      "CREATE STREAM Stock (symbol STRING, price FLOAT RANGE [1, 1000], "
      "volume INT);");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(c->name, "Stock");
  ASSERT_EQ(c->attributes.size(), 3u);
  EXPECT_EQ(c->attributes[0].type, ValueType::kString);
  ASSERT_TRUE(c->attributes[1].range.has_value());
  EXPECT_EQ(c->attributes[1].range->lo, 1.0);
  EXPECT_EQ(c->attributes[1].range->hi, 1000.0);
  EXPECT_FALSE(c->attributes[2].range.has_value());
}

TEST(ParserTest, CreateStreamNegativeRange) {
  auto c = ParseCreateStream("CREATE STREAM T (x FLOAT RANGE [-1.5, 2.5])");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(c->attributes[0].range->lo, -1.5);
}

TEST(ParserTest, CreateStreamErrors) {
  EXPECT_FALSE(ParseCreateStream("CREATE STREAM ()").ok());
  EXPECT_FALSE(ParseCreateStream("CREATE STREAM S (x BLOB)").ok());
  EXPECT_FALSE(ParseCreateStream("CREATE S (x INT)").ok());
}

TEST(ParserTest, StatementDispatch) {
  auto ddl = ParseStatement("CREATE STREAM S (x INT)");
  ASSERT_TRUE(ddl.ok());
  EXPECT_NE(ddl->create_stream, nullptr);
  EXPECT_EQ(ddl->query, nullptr);

  auto query = ParseStatement("SELECT * FROM S MATCH PATTERN SEQ(a)");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->create_stream, nullptr);
  EXPECT_NE(query->query, nullptr);
}

TEST(ParserTest, TrailingGarbageRejected) {
  EXPECT_FALSE(ParseQuery("SELECT * FROM S MATCH PATTERN SEQ(a) garbage").ok());
  EXPECT_FALSE(ParseExpression("1 + 2 extra").ok());
}

TEST(ParserTest, ErrorsMentionPosition) {
  auto r = ParseQuery("SELECT * FROM S MATCH PATTERN SEQ()");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos);
}

TEST(ParserTest, UnparseRoundTrips) {
  auto q1 = ParseQuery(kFullQuery).value();
  const std::string text = q1.ToString();
  auto q2 = ParseQuery(text);
  ASSERT_TRUE(q2.ok()) << "unparsed text failed to reparse:\n"
                       << text << "\n"
                       << q2.status().ToString();
  EXPECT_EQ(q2->ToString(), text);  // fixpoint after one round
}

TEST(ParserTest, UnparseCreateStreamRoundTrips) {
  auto c1 = ParseCreateStream(
                "CREATE STREAM S (a INT, b FLOAT RANGE [0, 1], c STRING)")
                .value();
  auto c2 = ParseCreateStream(c1.ToString());
  ASSERT_TRUE(c2.ok()) << c1.ToString();
  EXPECT_EQ(c2->ToString(), c1.ToString());
}

}  // namespace
}  // namespace cepr
