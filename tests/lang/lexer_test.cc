#include "lang/lexer.h"

#include <gtest/gtest.h>

namespace cepr {
namespace {

std::vector<TokenKind> KindsOf(const std::string& text) {
  auto tokens = Lex(text);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  std::vector<TokenKind> kinds;
  if (tokens.ok()) {
    for (const Token& t : *tokens) kinds.push_back(t.kind);
  }
  return kinds;
}

TEST(LexerTest, EmptyInputIsJustEof) {
  EXPECT_EQ(KindsOf(""), (std::vector<TokenKind>{TokenKind::kEof}));
  EXPECT_EQ(KindsOf("   \n\t "), (std::vector<TokenKind>{TokenKind::kEof}));
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  for (const std::string text : {"SELECT", "select", "SeLeCt"}) {
    auto kinds = KindsOf(text);
    ASSERT_EQ(kinds.size(), 2u);
    EXPECT_EQ(kinds[0], TokenKind::kSelect);
  }
}

TEST(LexerTest, IdentifiersKeepSpelling) {
  auto tokens = Lex("MyStream_2").value();
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "MyStream_2");
}

TEST(LexerTest, SoftKeywordsLexAsIdentifiers) {
  // WINDOW, CLOSE, EVERY etc. are soft: usable as attribute names.
  auto tokens = Lex("window close every events range").value();
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    EXPECT_EQ(tokens[i].kind, TokenKind::kIdentifier);
  }
}

TEST(LexerTest, IntegerAndFloatLiterals) {
  auto tokens = Lex("42 3.5 1e3 2.5e-2 7").value();
  EXPECT_EQ(tokens[0].kind, TokenKind::kInteger);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 3.5);
  EXPECT_EQ(tokens[2].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(tokens[2].float_value, 1000.0);
  EXPECT_EQ(tokens[3].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(tokens[3].float_value, 0.025);
  EXPECT_EQ(tokens[4].kind, TokenKind::kInteger);
}

TEST(LexerTest, DotAfterIntegerStaysSeparate) {
  // "b[1].price": the 1 must not eat the dot.
  auto kinds = KindsOf("1 . x");
  EXPECT_EQ(kinds[0], TokenKind::kInteger);
  EXPECT_EQ(kinds[1], TokenKind::kDot);
  auto tokens = Lex("b[1].price").value();
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[1].kind, TokenKind::kLBracket);
  EXPECT_EQ(tokens[2].kind, TokenKind::kInteger);
  EXPECT_EQ(tokens[3].kind, TokenKind::kRBracket);
  EXPECT_EQ(tokens[4].kind, TokenKind::kDot);
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  auto tokens = Lex("'hello' 'it''s'").value();
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  auto r = Lex("'oops");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(LexerTest, OperatorsSingleAndDouble) {
  EXPECT_EQ(KindsOf("< <= > >= = != <> ! + - * / %"),
            (std::vector<TokenKind>{
                TokenKind::kLt, TokenKind::kLe, TokenKind::kGt, TokenKind::kGe,
                TokenKind::kEq, TokenKind::kNe, TokenKind::kNe, TokenKind::kBang,
                TokenKind::kPlus, TokenKind::kMinus, TokenKind::kStar,
                TokenKind::kSlash, TokenKind::kPercent, TokenKind::kEof}));
}

TEST(LexerTest, CommentsSkipped) {
  auto kinds = KindsOf("SELECT -- the select keyword\n42");
  EXPECT_EQ(kinds, (std::vector<TokenKind>{TokenKind::kSelect,
                                           TokenKind::kInteger, TokenKind::kEof}));
}

TEST(LexerTest, CommentAtEndOfInput) {
  EXPECT_EQ(KindsOf("-- only a comment"),
            (std::vector<TokenKind>{TokenKind::kEof}));
}

TEST(LexerTest, MinusMinusInExpressionIsComment) {
  // "a --b" is "a" then comment; users must write "a - -b".
  auto kinds = KindsOf("1 - -2");
  EXPECT_EQ(kinds.size(), 5u);
}

TEST(LexerTest, IllegalCharacterReported) {
  auto r = Lex("price @ 4");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("illegal character"), std::string::npos);
}

TEST(LexerTest, LineAndColumnTracking) {
  auto tokens = Lex("SELECT\n  price").value();
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
}

TEST(LexerTest, ErrorsIncludePosition) {
  auto r = Lex("a\n  $");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(LexerTest, DescribeRendersTokens) {
  auto tokens = Lex("x 5 2.5 'y' SELECT").value();
  EXPECT_EQ(tokens[0].Describe(), "identifier 'x'");
  EXPECT_EQ(tokens[1].Describe(), "integer 5");
  EXPECT_EQ(tokens[2].Describe(), "float 2.5");
  EXPECT_EQ(tokens[3].Describe(), "string 'y'");
  EXPECT_EQ(tokens[4].Describe(), "'SELECT'");
}

TEST(LexerTest, HugeIntegerOverflowFails) {
  EXPECT_FALSE(Lex("99999999999999999999999999").ok());
}

}  // namespace
}  // namespace cepr
